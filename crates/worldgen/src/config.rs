//! Generator configuration and calibration tables.
//!
//! The constants here encode the *shapes* the paper reports, so a default
//! world reproduces them: per-region prevalence of majority state
//! ownership, the conglomerates operating foreign subsidiaries (paper
//! Table 3), countries where state operators hold >= 90% of the access
//! market (Table 8), and countries whose international connectivity runs
//! through a state transit gateway discoverable only via CTI (Appendix D).

use serde::{Deserialize, Serialize};
use soi_types::{cc, CountryCode, Region};

/// Top-level generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Linear scale on AS counts. `1.0` targets a world of roughly 6-8k
    /// ASes (compute-friendly while preserving the paper's proportions);
    /// tests use `0.1`-`0.25`.
    pub scale: f64,
    /// Probability that a company has been renamed at some point (feeding
    /// WHOIS staleness).
    pub rebrand_rate: f64,
    /// Probability that an incumbent-sized operator owns sibling ASNs.
    pub sibling_rate: f64,
    /// Fraction of a country's address space that leaks into a neighbour's
    /// geolocation blocks (regional operators, delegations) — exercises
    /// cross-border counting.
    pub geo_spill_rate: f64,
    /// Number of half-year topology snapshots generated for cone history
    /// (Figure 5). 22 covers 2010-01..2020-06.
    pub history_snapshots: usize,
    /// Worker threads for the sharded per-country generation phases
    /// (`0` = one per core). Any value produces a byte-identical world —
    /// the knob only changes wall-clock time (`tests/worldgen_parallel.rs`
    /// enforces this).
    #[serde(default = "default_threads")]
    pub threads: usize,
}

fn default_threads() -> usize {
    1
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0xC0FFEE,
            scale: 1.0,
            rebrand_rate: 0.18,
            sibling_rate: 0.35,
            geo_spill_rate: 0.02,
            history_snapshots: 22,
            threads: default_threads(),
        }
    }
}

impl WorldConfig {
    /// The full-size calibrated world used by the benchmarks and the
    /// `repro` binary.
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A small world for unit/integration tests (~1-2k ASes).
    pub fn test_scale(seed: u64) -> Self {
        WorldConfig { seed, scale: 0.18, history_snapshots: 6, ..Self::default() }
    }
}

/// Per-region probability that a country's incumbent operator is majority
/// state-owned; calibrated so Table 4's per-RIR country percentages come
/// out roughly right (APNIC 54%, RIPE 62%, ARIN 7%, AFRINIC 45%, LACNIC
/// 50%) with Africa/Asia/Middle East clearly ahead.
pub fn majority_rate(region: Region) -> f64 {
    match region {
        Region::Africa => 0.62,
        Region::Asia => 0.68,
        Region::CentralAsia => 0.9,
        Region::Europe => 0.52,
        Region::LatinAmerica => 0.52,
        Region::MiddleEast => 0.95,
        Region::NorthAmerica => 0.0,
        Region::Oceania => 0.45,
    }
}

/// Given that the incumbent is *not* majority state-owned, probability it
/// still carries a minority state stake (privatized European incumbents:
/// Deutsche Telekom 31%, Orange 23%, Telia 39.5%...).
pub fn minority_rate(region: Region) -> f64 {
    match region {
        Region::Europe => 0.5,
        Region::Asia | Region::LatinAmerica => 0.3,
        Region::Africa | Region::CentralAsia | Region::MiddleEast => 0.35,
        Region::Oceania => 0.2,
        Region::NorthAmerica => 0.05,
    }
}

/// Countries whose incumbent is forced majority-state regardless of the
/// regional draw, with a >= 0.9 access-market monopoly — the paper's
/// Table 8 / Appendix F list (intersected with our registry).
pub const MONOPOLY_COUNTRIES: &[CountryCode] = &[
    cc("ET"),
    cc("TV"),
    cc("CU"),
    cc("GL"),
    cc("DJ"),
    cc("SY"),
    cc("AE"),
    cc("ER"),
    cc("SR"),
    cc("CN"),
    cc("LY"),
    cc("YE"),
    cc("DZ"),
    cc("MO"),
    cc("AD"),
    cc("IR"),
    cc("UY"),
    cc("TM"),
];

/// Countries whose international connectivity is squeezed through a
/// state-owned transit gateway AS that serves (almost) no eyeballs and
/// originates little space — the class of AS only CTI discovers
/// (Appendix D lists Belarus, Vietnam's MobiFone Global, BSCCL, ETECSA).
pub const BOTTLENECK_COUNTRIES: &[CountryCode] =
    &[cc("BY"), cc("SY"), cc("CU"), cc("BD"), cc("ET"), cc("TM"), cc("VN"), cc("AO")];

/// A state-owned conglomerate with foreign subsidiaries: the paper's
/// Table 3, restricted to countries in our registry. `owner` is the
/// country whose state controls the parent; `targets` are the countries
/// hosting subsidiaries.
#[derive(Clone, Copy, Debug)]
pub struct ConglomerateSpec {
    /// Country of the state-owned parent.
    pub owner: CountryCode,
    /// Countries where subsidiaries operate.
    pub targets: &'static [CountryCode],
}

/// Table 3 of the paper (19 owner countries, 70 host countries), with
/// codes normalized to our registry (UK -> GB).
pub const CONGLOMERATES: &[ConglomerateSpec] = &[
    ConglomerateSpec {
        owner: cc("AE"),
        targets: &[
            cc("AF"),
            cc("BF"),
            cc("BJ"),
            cc("CI"),
            cc("EG"),
            cc("GA"),
            cc("MA"),
            cc("ML"),
            cc("MR"),
            cc("NE"),
            cc("TD"),
            cc("TG"),
        ],
    },
    ConglomerateSpec {
        owner: cc("CN"),
        targets: &[
            cc("AU"),
            cc("GB"),
            cc("HK"),
            cc("MO"),
            cc("NL"),
            cc("PK"),
            cc("SG"),
            cc("US"),
            cc("ZA"),
        ],
    },
    ConglomerateSpec {
        owner: cc("QA"),
        targets: &[
            cc("DZ"),
            cc("ID"),
            cc("IQ"),
            cc("KW"),
            cc("MM"),
            cc("MV"),
            cc("OM"),
            cc("PS"),
            cc("TN"),
        ],
    },
    ConglomerateSpec {
        owner: cc("NO"),
        targets: &[
            cc("BD"),
            cc("DK"),
            cc("FI"),
            cc("MM"),
            cc("MY"),
            cc("PK"),
            cc("SE"),
            cc("TH"),
            cc("GB"),
        ],
    },
    ConglomerateSpec {
        owner: cc("VN"),
        targets: &[
            cc("BI"),
            cc("CM"),
            cc("HT"),
            cc("KH"),
            cc("LA"),
            cc("MZ"),
            cc("PE"),
            cc("TL"),
            cc("TZ"),
        ],
    },
    ConglomerateSpec {
        owner: cc("SG"),
        targets: &[cc("AU"), cc("HK"), cc("JP"), cc("KR"), cc("LK"), cc("TW")],
    },
    ConglomerateSpec {
        owner: cc("MY"),
        targets: &[cc("BD"), cc("ID"), cc("KH"), cc("LK"), cc("NP")],
    },
    ConglomerateSpec { owner: cc("CO"), targets: &[cc("AR"), cc("BR"), cc("CL"), cc("PE")] },
    ConglomerateSpec { owner: cc("RS"), targets: &[cc("AT"), cc("BA"), cc("ME")] },
    ConglomerateSpec { owner: cc("ID"), targets: &[cc("MY"), cc("SG"), cc("TL")] },
    ConglomerateSpec { owner: cc("BH"), targets: &[cc("IM"), cc("JO"), cc("MV")] },
    ConglomerateSpec { owner: cc("TN"), targets: &[cc("CY"), cc("MR"), cc("MT")] },
    ConglomerateSpec { owner: cc("SA"), targets: &[cc("BH"), cc("KW")] },
    ConglomerateSpec { owner: cc("FJ"), targets: &[cc("VU")] },
    ConglomerateSpec { owner: cc("MU"), targets: &[cc("UG")] },
    ConglomerateSpec { owner: cc("BE"), targets: &[cc("LU")] },
    ConglomerateSpec { owner: cc("CH"), targets: &[cc("IT")] },
    ConglomerateSpec { owner: cc("RU"), targets: &[cc("AM")] },
    ConglomerateSpec { owner: cc("SI"), targets: &[cc("AL")] },
];

/// Two private multinational conglomerates (an América-Móvil-like and a
/// Vodafone-like): their subsidiaries are the classic Orbis
/// false-positive / misleading-name material (§7, §9).
pub const PRIVATE_CONGLOMERATES: &[ConglomerateSpec] = &[
    ConglomerateSpec {
        owner: cc("MX"),
        targets: &[cc("CO"), cc("PE"), cc("EC"), cc("GT"), cc("DO")],
    },
    ConglomerateSpec {
        owner: cc("GB"),
        targets: &[cc("DE"), cc("ES"), cc("IT"), cc("EG"), cc("TZ"), cc("CD")],
    },
];

/// Number of ASes a country hosts at `scale == 1.0`, by size class —
/// before stubs and specials. Tuned to land a full world around 6-8k ASes.
pub fn ases_for_size_class(size_class: u8) -> u32 {
    match size_class {
        1 => 4,
        2 => 9,
        3 => 22,
        4 => 48,
        5 => 110,
        6 => 220,
        _ => 4,
    }
}

/// IPv4 addresses allocated to a country, by size class (log scale).
pub fn address_budget(size_class: u8) -> u64 {
    match size_class {
        1 => 1 << 17,
        2 => 1 << 19,
        3 => 1 << 21,
        4 => 1 << 23,
        5 => 1 << 25,
        6 => 3 << 26,
        _ => 1 << 17,
    }
}

/// Internet-user budget of a country, by size class.
pub fn user_budget(size_class: u8) -> u64 {
    match size_class {
        1 => 60_000,
        2 => 400_000,
        3 => 3_000_000,
        4 => 15_000_000,
        5 => 60_000_000,
        6 => 400_000_000,
        _ => 60_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_types::{all_countries, country_info};

    #[test]
    fn calibration_tables_reference_known_countries() {
        for c in MONOPOLY_COUNTRIES.iter().chain(BOTTLENECK_COUNTRIES) {
            assert!(country_info(*c).is_some(), "unknown country {c}");
        }
        for spec in CONGLOMERATES.iter().chain(PRIVATE_CONGLOMERATES) {
            assert!(country_info(spec.owner).is_some(), "unknown owner {}", spec.owner);
            for t in spec.targets {
                assert!(country_info(*t).is_some(), "unknown target {t}");
            }
        }
    }

    #[test]
    fn table3_shape_preserved() {
        // 19 state conglomerate owners, ~70 target countries (paper values).
        assert_eq!(CONGLOMERATES.len(), 19);
        // The paper counts 70 distinct host countries; several (AU, HK,
        // BD, ...) host subsidiaries of more than one state.
        let unique: std::collections::HashSet<_> =
            CONGLOMERATES.iter().flat_map(|c| c.targets).collect();
        assert!((60..=75).contains(&unique.len()), "unique targets {}", unique.len());
        // UAE has the most subsidiaries, all over Africa.
        assert_eq!(CONGLOMERATES[0].owner, cc("AE"));
        assert_eq!(CONGLOMERATES[0].targets.len(), 12);
    }

    #[test]
    fn world_size_lands_in_range() {
        let total: u32 = all_countries().iter().map(|c| ases_for_size_class(c.size_class)).sum();
        // Operators + stubs roughly double this; keep base in 3-6k.
        assert!((3_000..=6_000).contains(&total), "base AS count {total}");
    }

    #[test]
    fn rates_are_probabilities() {
        for r in Region::ALL {
            assert!((0.0..=1.0).contains(&majority_rate(r)));
            assert!((0.0..=1.0).contains(&minority_rate(r)));
        }
        // The paper's core regional finding must be encoded.
        assert!(majority_rate(Region::Africa) > majority_rate(Region::NorthAmerica));
        assert!(majority_rate(Region::MiddleEast) > majority_rate(Region::Europe));
    }

    #[test]
    fn budgets_scale_monotonically() {
        for c in 1..6u8 {
            assert!(address_budget(c + 1) > address_budget(c));
            assert!(user_budget(c + 1) > user_budget(c));
            assert!(ases_for_size_class(c + 1) > ases_for_size_class(c));
        }
    }
}
