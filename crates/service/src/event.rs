//! The readiness-based serving engine ([`crate::server::IoMode::Epoll`]).
//!
//! One event-loop thread owns the listener and every client socket
//! (non-blocking, registered with the [`crate::poll`] epoll wrapper) and
//! drives each connection through a small state machine:
//!
//! ```text
//!            ┌────────── keep-alive idle ◄─────────┐
//!            ▼                                     │
//!  reading ──► parsed request ──► dispatch ──► writing
//!            │ (pipeline seq n)     │  ▲
//!            │                      ▼  │ completion (waker)
//!            │              bounded job queue ──► worker pool
//!            └ admission control: shed heavy tiers at half depth
//! ```
//!
//! The loop never computes an answer itself — parsed requests go to the
//! same bounded worker pool the threaded engine uses, tagged with a
//! per-connection sequence number. Workers answer through
//! [`handlers::respond_cached`] and push the rendered-to-be responses
//! onto a completion queue; the loop flushes completions *in sequence
//! order* (a `BTreeMap` reorder buffer), so pipelined clients get their
//! responses in request order no matter how workers interleave.
//!
//! Admission control sheds by route tier before the job queue
//! saturates: `search`/`risk`/`history` (the expensive scans and report
//! builds) get `503 overloaded` once the queue is half full, every
//! other data route when it is full, and ops routes
//! (`/healthz`, `/metrics`, `/admin/*`) only when a push actually
//! fails — so the observability plane stays up while the data plane
//! sheds. Shed counts are exported per tier in `/metrics`.
//!
//! Framing is computed identically to the threaded engine
//! (`Connection: keep-alive` vs `close`, bodies stripped for HEAD), so
//! the two engines are byte-identical on the wire — `tests/serve.rs`
//! holds that equality across every `/v1` route.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::handlers;
use crate::http::{self, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::poll::{EpollEvent, Poller, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::server::{event_handle, BoundedQueue, ServerConfig, ServerHandle, ServerState};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long `epoll_wait` may sleep between timeout sweeps.
const TICK_MS: i32 = 250;
/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// One parsed request in flight from the event loop to a worker.
pub(crate) struct Job {
    conn: u64,
    seq: u64,
    req: Request,
    accepted: Instant,
}

/// A worker's finished answer, waiting for the loop to flush it.
struct Completion {
    conn: u64,
    seq: u64,
    resp: Response,
}

/// What the loop must remember about a dispatched request to frame its
/// response later.
struct ReqMeta {
    keep_alive: bool,
    head: bool,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed.
    buf: Vec<u8>,
    /// Rendered responses not yet written, and the write cursor into it.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number the next parsed request gets.
    next_seq: u64,
    /// Sequence number the next flushed response must have.
    flushed_seq: u64,
    /// Framing info per dispatched-but-unflushed request.
    meta: BTreeMap<u64, ReqMeta>,
    /// Completed responses waiting for their turn (reorder buffer).
    ready: BTreeMap<u64, Response>,
    /// No further requests will be parsed (Connection: close seen,
    /// request cap reached, parse error, or clean end of stream).
    no_more: bool,
    /// Peer closed its write half (EOF observed).
    read_closed: bool,
    /// The connection must close once `out` drains.
    close_when_flushed: bool,
    /// Hard I/O failure: destroy without flushing.
    dead: bool,
    /// Interest bits currently registered with the poller.
    interest: u32,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            flushed_seq: 0,
            meta: BTreeMap::new(),
            ready: BTreeMap::new(),
            no_more: false,
            read_closed: false,
            close_when_flushed: false,
            dead: false,
            interest: EPOLLIN | EPOLLRDHUP,
            last_activity: Instant::now(),
        }
    }

    /// True once nothing remains to read, compute, or write.
    fn finished(&self, draining: bool) -> bool {
        let flushed_all = self.flushed_seq == self.next_seq && self.ready.is_empty();
        let out_drained = self.out_pos >= self.out.len();
        flushed_all
            && out_drained
            && (self.close_when_flushed || self.read_closed || self.no_more || draining)
    }
}

/// Admission tier for one request. Heavy routes are the expensive scans
/// and derived-report builds; ops routes are the observability and
/// control plane and are only refused when the queue is truly full.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    Ops,
    Heavy,
    Light,
}

/// Classifies a request for admission control, returning the per-route
/// metrics label it sheds under and its tier.
fn admission(req: &Request) -> (&'static str, Tier) {
    let segments = req.segments();
    match *segments.as_slice() {
        ["healthz"] => ("healthz", Tier::Ops),
        ["metrics"] => ("metrics", Tier::Ops),
        ["admin", ..] => ("admin", Tier::Ops),
        ["v1", "search", ..] => ("v1_search", Tier::Heavy),
        ["v1", "risk", ..] => ("v1_risk", Tier::Heavy),
        ["v1", "history", ..] => ("v1_history", Tier::Heavy),
        ["search"] => ("search", Tier::Heavy),
        ["v1", "asn", ..] => ("v1_asn", Tier::Light),
        ["v1", "ip", ..] => ("v1_ip", Tier::Light),
        ["v1", "prefix", ..] => ("v1_prefix", Tier::Light),
        ["v1", "country", ..] => ("v1_country", Tier::Light),
        ["v1", "dataset", ..] => ("v1_dataset", Tier::Light),
        ["v1", ..] => ("v1_other", Tier::Light),
        ["asn", ..] => ("asn", Tier::Light),
        ["ip", ..] => ("ip", Tier::Light),
        ["prefix", ..] => ("prefix", Tier::Light),
        ["country", ..] => ("country", Tier::Light),
        ["dataset"] => ("dataset", Tier::Light),
        _ => ("other", Tier::Light),
    }
}

fn shed_response(req: &Request) -> Response {
    if req.segments().first() == Some(&"v1") {
        Response::api_error(
            503,
            "overloaded",
            "server overloaded, retry later",
            Some(req.path.as_str()),
        )
    } else {
        Response::error(503, "server overloaded, retry later")
    }
}

/// Binds the event engine onto an already-bound listener: spawns the
/// worker pool and the loop thread, returns the assembled handle.
pub(crate) fn serve_event(
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    poller.add(waker.read_fd(), EPOLLIN, TOKEN_WAKER)?;

    let jobs: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(cfg.queue_capacity.max(1)));
    let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let waker = waker.clone();
            std::thread::Builder::new()
                .name(format!("soi-service-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = jobs.pop() {
                        let (route, resp) =
                            handlers::respond_cached(&state, jobs.depth(), &job.req);
                        state.metrics.record_request(route, resp.status, job.accepted.elapsed());
                        state.metrics.end_request();
                        completions.lock().expect("completion lock").push_back(Completion {
                            conn: job.conn,
                            seq: job.seq,
                            resp,
                        });
                        waker.wake();
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();

    let event_loop = {
        let state = Arc::clone(&state);
        let jobs = Arc::clone(&jobs);
        let shutdown = Arc::clone(&shutdown);
        let waker = waker.clone();
        let cfg = cfg.clone();
        std::thread::Builder::new()
            .name("soi-service-event-loop".to_owned())
            .spawn(move || {
                run_loop(listener, poller, waker, state, jobs, completions, shutdown, cfg)
            })
            .expect("spawn event loop thread")
    };

    Ok(event_handle(local_addr, state, jobs, waker, event_loop, shutdown, workers))
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    state: Arc<ServerState>,
    jobs: Arc<BoundedQueue<Job>>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let metrics = &*state.metrics;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![EpollEvent::zeroed(); 256];
    let mut listening = true;

    loop {
        let n = poller.wait(&mut events, TICK_MS).unwrap_or(0);
        let draining = shutdown.load(Ordering::Acquire);
        if draining && listening {
            // Stop accepting; the listener itself drops (releasing the
            // port) when this function returns.
            let _ = poller.delete(listener.as_raw_fd());
            listening = false;
        }

        for event in events.iter().take(n) {
            match event.token() {
                TOKEN_LISTENER => {
                    if !draining {
                        accept_ready(
                            &listener,
                            &poller,
                            &mut conns,
                            &mut next_token,
                            metrics,
                            &cfg,
                        );
                    }
                }
                TOKEN_WAKER => waker.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        let bits = event.events();
                        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                            read_ready(conn);
                        }
                    }
                }
            }
        }

        // Workers finished some requests: move them into the reorder
        // buffers. A completion for a connection that died is dropped.
        {
            let mut queue = completions.lock().expect("completion lock");
            while let Some(done) = queue.pop_front() {
                if let Some(conn) = conns.get_mut(&done.conn) {
                    conn.ready.insert(done.seq, done.resp);
                }
            }
        }

        // Advance every connection's state machine: parse & dispatch
        // new requests, flush in-order completions, write, re-arm.
        let now = Instant::now();
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let conn = conns.get_mut(&token).expect("conn for token");
            parse_and_dispatch(token, conn, &state, &jobs, &cfg);
            flush_ready(conn, draining, &cfg);
            if conn.out_pos < conn.out.len() {
                write_ready(conn);
            }
            sweep_timeouts(conn, now, metrics, &cfg);
            if conn.dead || conn.finished(draining) {
                let _ = poller.delete(conn.stream.as_raw_fd());
                conns.remove(&token);
                continue;
            }
            rearm(token, conn, &poller, &cfg);
        }

        if draining && conns.is_empty() {
            break;
        }
    }
    // No more connections will ever produce work: release the workers.
    jobs.close();
}

fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    metrics: &Metrics,
    cfg: &ServerConfig,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.record_connection();
                if conns.len() >= cfg.max_connections.max(1) {
                    metrics.record_rejected();
                    // Best-effort refusal on a briefly-blocking socket.
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                    let _ = Response::error(503, "connection limit reached, retry later")
                        .write_to(&mut stream, false);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token).is_ok() {
                    conns.insert(token, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drains the socket into the parse buffer (level-triggered, so
/// stopping at `WouldBlock` is safe).
fn read_ready(conn: &mut Conn) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Parses as many complete requests as the pipeline window allows and
/// dispatches each to the worker pool (or sheds it). Parse errors
/// synthesize an error response directly into the reorder buffer with
/// close framing, exactly like the threaded engine answers them.
fn parse_and_dispatch(
    token: u64,
    conn: &mut Conn,
    state: &Arc<ServerState>,
    jobs: &Arc<BoundedQueue<Job>>,
    cfg: &ServerConfig,
) {
    let metrics = &*state.metrics;
    while !conn.no_more && !conn.dead {
        if conn.next_seq - conn.flushed_seq >= cfg.max_pipeline_depth.max(1) as u64 {
            break; // pipeline window full; resume after flushes
        }
        if conn.buf.is_empty() {
            if conn.read_closed {
                conn.no_more = true;
            }
            break;
        }
        match http::try_parse(&conn.buf) {
            Ok(Some((req, consumed))) => {
                conn.buf.drain(..consumed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let keep_alive = req.keep_alive;
                conn.meta.insert(seq, ReqMeta { keep_alive, head: req.method == "HEAD" });
                // After `Connection: close` (or the per-connection request
                // cap) anything further on the stream is ignored — the
                // same discard the threaded engine performs by closing.
                if !keep_alive || conn.next_seq >= cfg.max_requests_per_connection as u64 {
                    conn.no_more = true;
                }
                dispatch(token, conn, seq, req, metrics, jobs);
            }
            Ok(None) => {
                if conn.read_closed {
                    // Truncated request then EOF: answer like the
                    // threaded engine's mid-request read failure.
                    synth_error(conn, metrics, 400, "stream ended mid-request");
                }
                break;
            }
            // Clean end of stream at a message boundary: close quietly.
            Err(HttpError::Closed) => {
                conn.no_more = true;
                break;
            }
            Err(HttpError::BadRequest(message)) => {
                synth_error(conn, metrics, 400, &message);
                break;
            }
            Err(HttpError::TooLarge(message)) => {
                synth_error(conn, metrics, 431, &message);
                break;
            }
            Err(HttpError::NotImplemented(message)) => {
                synth_error(conn, metrics, 501, &message);
                break;
            }
            // Timeout/Io cannot come from an in-memory parse.
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Queues a parse-error response at the next sequence slot with close
/// framing; no latency sample, mirroring the threaded engine.
fn synth_error(conn: &mut Conn, metrics: &Metrics, status: u16, message: &str) {
    metrics.record_request_unmeasured("other", status);
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.meta.insert(seq, ReqMeta { keep_alive: false, head: false });
    conn.ready.insert(seq, Response::error(status, message));
    conn.no_more = true;
}

/// Admission control, then hand-off. Heavy tiers shed at half queue
/// depth, light tiers when full, ops only when the push itself fails.
fn dispatch(
    token: u64,
    conn: &mut Conn,
    seq: u64,
    req: Request,
    metrics: &Metrics,
    jobs: &Arc<BoundedQueue<Job>>,
) {
    let (label, tier) = admission(&req);
    let depth = jobs.depth();
    let capacity = jobs.capacity();
    let shed = match tier {
        Tier::Ops => false,
        Tier::Heavy => depth.saturating_mul(2) >= capacity,
        Tier::Light => depth >= capacity,
    };
    if shed {
        metrics.record_shed(tier == Tier::Heavy);
        metrics.record_request_unmeasured(label, 503);
        conn.ready.insert(seq, shed_response(&req));
        return;
    }
    metrics.begin_request();
    let job = Job { conn: token, seq, req, accepted: Instant::now() };
    if let Err(job) = jobs.try_push(job) {
        metrics.end_request();
        metrics.record_shed(tier == Tier::Heavy);
        metrics.record_request_unmeasured(label, 503);
        conn.ready.insert(seq, shed_response(&job.req));
    }
}

/// Renders completed responses in sequence order into the write buffer.
/// Framing matches the threaded engine: keep-alive unless the request
/// said close, the server is draining, or the request cap is reached.
fn flush_ready(conn: &mut Conn, draining: bool, cfg: &ServerConfig) {
    while let Some(resp) = conn.ready.remove(&conn.flushed_seq) {
        let meta = conn.meta.remove(&conn.flushed_seq).expect("meta for flushed seq");
        let keep = meta.keep_alive
            && !draining
            && conn.flushed_seq + 1 < cfg.max_requests_per_connection as u64;
        conn.out.extend_from_slice(&resp.render(keep, meta.head));
        conn.flushed_seq += 1;
        if !keep {
            conn.no_more = true;
            conn.close_when_flushed = true;
        }
    }
}

/// Writes as much of the out-buffer as the socket accepts.
fn write_ready(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
}

/// Reclaims idle and stalled connections, mirroring the threaded
/// engine's read/write timeouts: an idle connection with nothing in
/// flight counts as a timeout; a write stall is dropped silently.
fn sweep_timeouts(conn: &mut Conn, now: Instant, metrics: &Metrics, cfg: &ServerConfig) {
    if conn.dead {
        return;
    }
    let idle = now.saturating_duration_since(conn.last_activity);
    let writing = conn.out_pos < conn.out.len();
    let inflight = conn.next_seq != conn.flushed_seq || !conn.ready.is_empty();
    if writing {
        if idle > cfg.write_timeout {
            conn.dead = true;
        }
    } else if !inflight && idle > cfg.read_timeout {
        metrics.record_timeout();
        conn.dead = true;
    }
}

/// Re-registers the interest set when it changed: read interest while
/// the pipeline window has room, write interest while output is queued.
fn rearm(token: u64, conn: &mut Conn, poller: &Poller, cfg: &ServerConfig) {
    let mut desired = 0u32;
    let window_open = conn.next_seq - conn.flushed_seq < cfg.max_pipeline_depth.max(1) as u64;
    if !conn.no_more && !conn.read_closed && window_open {
        desired |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.out_pos < conn.out.len() {
        desired |= EPOLLOUT;
    }
    if desired != conn.interest {
        if poller.modify(conn.stream.as_raw_fd(), desired, token).is_ok() {
            conn.interest = desired;
        } else {
            conn.dead = true;
        }
    }
}
