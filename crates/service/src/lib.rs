//! `soi-service`: a concurrent query service over a state-owned-operator
//! [`Dataset`](soi_core::Dataset) and its announced address space.
//!
//! The pipeline (`soi-core`) produces a dataset *once*; this crate makes
//! it *queryable*. [`ServiceIndex`] freezes the dataset plus the world's
//! prefix→origin table into immutable in-memory indexes — ASN→record,
//! longest-prefix-match over announced space, per-country footprint
//! summaries, and an org-name search — and [`serve`] exposes them over a
//! small HTTP/1.1 server built directly on `std::net`:
//!
//! * a versioned `/v1` data API (envelope errors, limit/offset
//!   pagination with totals) with the pre-versioning routes kept as
//!   deprecated aliases — see [`handlers`] for the route table,
//! * a bounded worker pool with an explicit backpressure queue (full
//!   queue ⇒ immediate `503`, never unbounded memory),
//! * per-request read/write timeouts,
//! * graceful shutdown that drains queued and in-flight requests,
//! * `/healthz` and a `/metrics` endpoint with request counts,
//!   p50/p95/p99 latency histograms, and reload generation/counters,
//! * zero-downtime reload ([`reload`]): the index lives in an
//!   [`IndexSlot`] and a [`Reloader`] swaps in a freshly validated
//!   snapshot (`POST /admin/reload` or SIGHUP) without dropping a
//!   request; rejected snapshots leave the old index serving,
//! * a live write path ([`delta`]): `POST /admin/delta` applies a
//!   checksummed `soi-delta` patch to the tracked served payload and
//!   swaps the rebuilt index in the same zero-downtime way; stale or
//!   conflicting deltas are refused with the old index untouched,
//! * as-of queries ([`history`]): with a `soi-history` directory
//!   attached ([`serve_history`]), the `/v1` read routes accept
//!   `?at=<year>` and `/v1/history/org/{id}` serves ownership
//!   timelines, materialized views cached in a `(generation, year)`
//!   LRU,
//! * derived risk analyses ([`risk`]): with a [`RiskService`] attached
//!   ([`serve_full`]), `/v1/risk/country/{cc}`,
//!   `/v1/risk/chokepoints/{cc}` and `/v1/risk/classes` serve the
//!   checksummed `soi-risk` report for the live payload (cached per
//!   index generation) or, via `?at=<year>`, for any stored year, and
//!   `/v1/risk/diff?from=&to=` serves per-country deltas between two
//!   stored years,
//! * conditional requests: every `/v1` data and risk route carries a
//!   strong `ETag` (index generation + content checksum) and honours
//!   `If-None-Match` with `304 Not Modified` plus `HEAD` — the cheap
//!   revalidation flow for pollers,
//! * a generation-keyed response cache ([`respcache`]): rendered `/v1`
//!   responses are reused until a reload/delta bumps the generation,
//!   with hit/miss/eviction counters in `/metrics`,
//! * two serving engines ([`ServerConfig::io`]): the thread-per-
//!   connection pool above, and (default on Linux) an epoll event loop
//!   with real keep-alive pipelining and tiered load shedding, byte-
//!   identical on the wire.
//!
//! No async runtime, no HTTP dependency: request parsing is hand-rolled
//! in [`http`], epoll is bound directly in [`poll`] (Linux only), JSON
//! comes from the workspace's existing `serde_json`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use soi_service::{serve, ServerConfig, ServiceIndex};
//! # fn demo(dataset: soi_core::Dataset, table: soi_bgp::PrefixToAs) -> std::io::Result<()> {
//! let index = Arc::new(ServiceIndex::build(dataset, &table));
//! let handle = serve(index, ("127.0.0.1", 8080), ServerConfig::default())?;
//! println!("listening on {}", handle.local_addr());
//! // ... later:
//! let final_metrics = handle.shutdown();
//! println!("served {} requests", final_metrics.requests_total);
//! # Ok(())
//! # }
//! ```

pub mod delta;
#[cfg(target_os = "linux")]
pub(crate) mod event;
pub mod handlers;
pub mod history;
pub mod http;
pub mod index;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod reload;
pub mod respcache;
pub mod risk;
pub mod server;

pub use delta::{apply_delta, DeltaOutcome, DeltaRejection};
pub use history::{HistoryService, DEFAULT_HISTORY_CACHE_CAPACITY};
pub use index::{
    AsnAnswer, CountrySummary, DatasetSummary, IndexSizes, IpAnswer, SearchHit, ServiceIndex,
};
pub use metrics::{IndexProvenance, LatencySummary, Metrics, MetricsSnapshot, ServiceStatus};
pub use reload::{IndexSlot, ReloadOutcome, Reloader};
pub use respcache::{RespCache, DEFAULT_RESPCACHE_CAPACITY};
pub use risk::{RiskService, RiskServiceError, DEFAULT_RISK_CACHE_CAPACITY};
pub use server::{
    install_signal_handlers, reload_requested, serve, serve_full, serve_history, serve_with,
    shutdown_requested, IoMode, ServerConfig, ServerHandle, ServerState,
};
