//! Immutable in-memory indexes over a pipeline run.
//!
//! [`ServiceIndex`] is built once from a [`Dataset`] plus the world's
//! announced prefix→origin table and is then shared read-only across every
//! server worker thread — queries never take a lock. Four indexes answer
//! the questions downstream consumers actually ask:
//!
//! * **ASN → organization** — "which state operates this AS?"
//! * **longest-prefix-match** over announced space — "who originates this
//!   address, and is that a state operator?"
//! * **country → footprint/majority summary** — per-country rollups of
//!   state-operated organizations, ASNs and announced address space;
//! * **organization-name search** — substring search over org names.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use serde::Serialize;
use soi_bgp::PrefixToAs;
use soi_core::{Dataset, OrgRecord, Snapshot};
use soi_types::{country_info, Asn, CountryCode, Ipv4Prefix, PrefixTrie};

/// Sizes of every index, reported by `/metrics`.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct IndexSizes {
    /// Organizations in the served dataset.
    pub organizations: usize,
    /// Distinct state-owned ASNs indexed.
    pub asns: usize,
    /// ASN claims beyond the first record per ASN (deterministically
    /// resolved in favour of the lowest org id; see
    /// [`ServiceIndex::build`]).
    pub asn_conflicts: usize,
    /// Announced prefixes in the longest-prefix-match trie.
    pub announced_prefixes: usize,
    /// Countries with a non-empty summary.
    pub countries: usize,
}

/// Answer to an ASN point lookup.
#[derive(Clone, Debug, Serialize)]
pub struct AsnAnswer {
    /// The queried ASN, `ASnnnn` form.
    pub asn: String,
    /// True if the ASN belongs to a majority state-owned operator.
    pub state_owned: bool,
    /// The full dataset record when state-owned.
    pub organization: Option<OrgRecord>,
}

/// Answer to an address or prefix lookup (longest-prefix-match over
/// announced space, then the ASN verdict for the origin).
#[derive(Clone, Debug, Serialize)]
pub struct IpAnswer {
    /// The queried address or prefix, as given.
    pub query: String,
    /// Most specific announced prefix covering the query, if any.
    pub matched_prefix: Option<String>,
    /// Origin AS of the matched prefix.
    pub origin: Option<String>,
    /// True if the origin belongs to a majority state-owned operator.
    pub state_owned: bool,
    /// Operating organization's name when state-owned.
    pub organization: Option<String>,
    /// Owning state's country code when state-owned.
    pub owner: Option<String>,
}

/// Per-country rollup: who the state operates at home, which foreign
/// states operate locally, and how much announced space that covers.
///
/// Address counts attribute each announced prefix (after more-specific
/// carve-outs) to the country where its origin's organization *operates*
/// (the target country for foreign subsidiaries) — the dataset-only
/// approximation of the paper's geolocated footprints.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CountrySummary {
    /// ISO alpha-2 code.
    pub country: String,
    /// English short name.
    pub country_name: String,
    /// True if the country's own state majority-owns at least one
    /// operator in the dataset (every dataset record is majority-owned).
    pub has_majority_state_operator: bool,
    /// Names of operators owned by this country's state and operating
    /// domestically.
    pub domestic_organizations: Vec<String>,
    /// Names of foreign state-owned operators active in this country.
    pub foreign_organizations: Vec<String>,
    /// ASNs of the domestic state operators.
    pub domestic_asns: Vec<Asn>,
    /// ASNs of foreign state operators active here.
    pub foreign_asns: Vec<Asn>,
    /// Announced IPv4 addresses originated by the domestic state ASNs.
    pub domestic_announced_addresses: u64,
    /// Announced IPv4 addresses originated by the foreign state ASNs.
    pub foreign_announced_addresses: u64,
}

/// One org-name search hit.
#[derive(Clone, Debug, Serialize)]
pub struct SearchHit {
    /// Organization name.
    pub org_name: String,
    /// Owning state's country code.
    pub owner: String,
    /// Confirmation-source type.
    pub source: String,
    /// ASNs operated by the organization.
    pub asns: Vec<Asn>,
}

/// Whole-dataset summary (the `/dataset` route).
#[derive(Clone, Debug, Serialize)]
pub struct DatasetSummary {
    /// Organizations in the dataset.
    pub organizations: usize,
    /// Distinct state-owned ASNs.
    pub state_owned_asns: usize,
    /// Foreign state-owned subsidiaries.
    pub foreign_subsidiaries: usize,
    /// Countries owning at least one operator.
    pub owner_countries: usize,
    /// Announced prefixes known to the server.
    pub announced_prefixes: usize,
}

/// The immutable query engine shared by all worker threads.
pub struct ServiceIndex {
    dataset: Dataset,
    by_asn: HashMap<Asn, usize>,
    asn_conflicts: usize,
    origins: PrefixTrie<Asn>,
    announced_prefixes: usize,
    countries: BTreeMap<CountryCode, CountrySummary>,
    names: Vec<(String, usize)>,
}

/// Precedence of a record's claim on an ASN: lowest org id wins, then
/// lexicographic org name, then dataset position — deterministic no matter
/// what order records are enumerated in.
fn claim_rank(rec: &OrgRecord, position: usize) -> (u32, &str, usize) {
    (rec.org_id.map_or(u32::MAX, |o| o.0), rec.org_name.as_str(), position)
}

impl ServiceIndex {
    /// Builds every index from a dataset and the announced prefix→origin
    /// table.
    ///
    /// When two records claim the same ASN the record with the lowest org
    /// id wins (ties broken by org name, then dataset position), and every
    /// losing claim is counted in [`IndexSizes::asn_conflicts`] so the
    /// condition is visible in `/metrics` instead of silently depending on
    /// enumeration order.
    pub fn build(dataset: Dataset, table: &PrefixToAs) -> ServiceIndex {
        let mut by_asn: HashMap<Asn, usize> = HashMap::new();
        let mut asn_conflicts = 0usize;
        for (i, rec) in dataset.organizations.iter().enumerate() {
            for &asn in &rec.asns {
                match by_asn.entry(asn) {
                    Entry::Vacant(slot) => {
                        slot.insert(i);
                    }
                    Entry::Occupied(mut slot) => {
                        asn_conflicts += 1;
                        let incumbent = &dataset.organizations[*slot.get()];
                        if claim_rank(rec, i) < claim_rank(incumbent, *slot.get()) {
                            slot.insert(i);
                        }
                    }
                }
            }
        }

        let mut origins = PrefixTrie::new();
        for &(prefix, origin) in table.entries() {
            origins.insert(prefix, origin);
        }

        // Per-country rollups. Effective addresses honour more-specific
        // carve-outs, so nested announcements are not double-counted.
        let effective = table.effective_addresses();
        let mut addr_by_asn: HashMap<Asn, u64> = HashMap::new();
        for &(prefix, origin) in table.entries() {
            let n = effective.get(&prefix).copied().unwrap_or(0);
            *addr_by_asn.entry(origin).or_insert(0) += n;
        }
        let mut countries: BTreeMap<CountryCode, CountrySummary> = BTreeMap::new();
        for rec in &dataset.organizations {
            let operating = rec.operating_cc();
            let summary = countries.entry(operating).or_insert_with(|| empty_summary(operating));
            let announced: u64 =
                rec.asns.iter().map(|a| addr_by_asn.get(a).copied().unwrap_or(0)).sum();
            if rec.ownership_cc == operating {
                summary.has_majority_state_operator = true;
                summary.domestic_organizations.push(rec.org_name.clone());
                summary.domestic_asns.extend(rec.asns.iter().copied());
                summary.domestic_announced_addresses += announced;
            } else {
                summary.foreign_organizations.push(rec.org_name.clone());
                summary.foreign_asns.extend(rec.asns.iter().copied());
                summary.foreign_announced_addresses += announced;
            }
        }
        for summary in countries.values_mut() {
            summary.domestic_organizations.sort();
            summary.foreign_organizations.sort();
            summary.domestic_asns.sort_unstable();
            summary.domestic_asns.dedup();
            summary.foreign_asns.sort_unstable();
            summary.foreign_asns.dedup();
        }

        let names: Vec<(String, usize)> = dataset
            .organizations
            .iter()
            .enumerate()
            .map(|(i, rec)| (rec.org_name.to_lowercase(), i))
            .collect();

        ServiceIndex {
            announced_prefixes: origins.len(),
            dataset,
            by_asn,
            asn_conflicts,
            origins,
            countries,
            names,
        }
    }

    /// Builds the index directly from a validated [`Snapshot`] — the cold
    /// start that skips world generation and the pipeline entirely.
    ///
    /// The snapshot's table was already re-validated (single-origin
    /// invariant) during deserialization, so this is pure index
    /// construction.
    pub fn from_snapshot(snapshot: Snapshot) -> ServiceIndex {
        let soi_core::SnapshotPayload { dataset, table } = snapshot.payload;
        ServiceIndex::build(dataset, &table)
    }

    /// The served dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Index sizes for `/metrics`.
    pub fn sizes(&self) -> IndexSizes {
        IndexSizes {
            organizations: self.dataset.organizations.len(),
            asns: self.by_asn.len(),
            asn_conflicts: self.asn_conflicts,
            announced_prefixes: self.announced_prefixes,
            countries: self.countries.len(),
        }
    }

    /// The record operating `asn`, if state-owned.
    pub fn record_for_asn(&self, asn: Asn) -> Option<&OrgRecord> {
        self.by_asn.get(&asn).map(|&i| &self.dataset.organizations[i])
    }

    /// ASN point lookup.
    pub fn lookup_asn(&self, asn: Asn) -> AsnAnswer {
        let rec = self.record_for_asn(asn);
        AsnAnswer { asn: asn.to_string(), state_owned: rec.is_some(), organization: rec.cloned() }
    }

    /// Longest-prefix-match lookup for one address.
    pub fn lookup_ip(&self, ip: Ipv4Addr) -> IpAnswer {
        let matched = self.origins.lookup(u32::from(ip));
        self.verdict(ip.to_string(), matched)
    }

    /// Most specific announced prefix covering `prefix` (length `<=`
    /// the query's), then the origin's verdict.
    pub fn lookup_prefix(&self, prefix: Ipv4Prefix) -> IpAnswer {
        let matched = self.origins.lookup_covering(prefix);
        self.verdict(prefix.to_string(), matched)
    }

    fn verdict(&self, query: String, matched: Option<(Ipv4Prefix, &Asn)>) -> IpAnswer {
        let (matched_prefix, origin) = match matched {
            Some((p, &asn)) => (Some(p), Some(asn)),
            None => (None, None),
        };
        let rec = origin.and_then(|asn| self.record_for_asn(asn));
        IpAnswer {
            query,
            matched_prefix: matched_prefix.map(|p| p.to_string()),
            origin: origin.map(|a| a.to_string()),
            state_owned: rec.is_some(),
            organization: rec.map(|r| r.org_name.clone()),
            owner: rec.map(|r| r.ownership_cc.to_string()),
        }
    }

    /// Country rollup. `None` for codes outside the static registry.
    pub fn country(&self, country: CountryCode) -> Option<CountrySummary> {
        country_info(country)?;
        Some(self.countries.get(&country).cloned().unwrap_or_else(|| empty_summary(country)))
    }

    /// Case-insensitive substring search over organization names, in
    /// dataset order, capped at `limit` hits.
    pub fn search(&self, needle: &str, limit: usize) -> Vec<SearchHit> {
        self.search_page(needle, limit, 0).1
    }

    /// Paginated [`ServiceIndex::search`]: skips `offset` matches, returns
    /// up to `limit`, plus the total match count. Ordering is stable —
    /// dataset (publication) order — so walking pages never skips or
    /// repeats a hit while the served generation is unchanged.
    pub fn search_page(
        &self,
        needle: &str,
        limit: usize,
        offset: usize,
    ) -> (usize, Vec<SearchHit>) {
        let needle = needle.to_lowercase();
        let mut total = 0usize;
        let mut hits = Vec::new();
        for &(ref name, i) in &self.names {
            if !name.contains(&needle) {
                continue;
            }
            total += 1;
            if total > offset && hits.len() < limit {
                hits.push(self.hit(i));
            }
        }
        (total, hits)
    }

    /// Paginated country roll-up listing in country-code order (the
    /// `BTreeMap` key order), plus the total country count.
    pub fn countries_page(&self, limit: usize, offset: usize) -> (usize, Vec<CountrySummary>) {
        let total = self.countries.len();
        (total, self.countries.values().skip(offset).take(limit).cloned().collect())
    }

    fn hit(&self, i: usize) -> SearchHit {
        let rec = &self.dataset.organizations[i];
        SearchHit {
            org_name: rec.org_name.clone(),
            owner: rec.ownership_cc.to_string(),
            source: rec.source.clone(),
            asns: rec.asns.clone(),
        }
    }

    /// Whole-dataset summary.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            organizations: self.dataset.organizations.len(),
            state_owned_asns: self.dataset.state_owned_ases().len(),
            foreign_subsidiaries: self
                .dataset
                .organizations
                .iter()
                .filter(|o| o.is_foreign_subsidiary())
                .count(),
            owner_countries: self.dataset.owner_countries().len(),
            announced_prefixes: self.announced_prefixes,
        }
    }
}

fn empty_summary(country: CountryCode) -> CountrySummary {
    CountrySummary {
        country: country.to_string(),
        country_name: country_info(country).map(|i| i.name.to_owned()).unwrap_or_default(),
        ..CountrySummary::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_types::{cc, OrgId, Rir};

    fn record(name: &str, owner: &str, target: Option<&str>, asns: &[u32]) -> OrgRecord {
        OrgRecord {
            conglomerate_name: name.to_owned(),
            org_id: Some(OrgId(1)),
            org_name: name.to_owned(),
            ownership_cc: owner.parse().unwrap(),
            ownership_country_name: owner.to_owned(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: target.map(|t| t.parse().unwrap()),
            target_country_name: target.map(|t| t.to_owned()),
            asns: asns.iter().map(|&a| Asn(a)).collect(),
        }
    }

    fn fixture() -> ServiceIndex {
        let dataset = Dataset {
            organizations: vec![
                record("Telenor", "NO", None, &[2119, 8210]),
                record("Telenor Pakistan", "NO", Some("PK"), &[24499]),
                record("PTCL", "PK", None, &[17557]),
            ],
        };
        let table = PrefixToAs::from_entries([
            ("10.0.0.0/8".parse().unwrap(), Asn(2119)),
            ("10.1.0.0/16".parse().unwrap(), Asn(24499)),
            ("192.168.0.0/16".parse().unwrap(), Asn(9999)),
        ])
        .unwrap();
        ServiceIndex::build(dataset, &table)
    }

    #[test]
    fn asn_lookup_distinguishes_state_owned() {
        let ix = fixture();
        let hit = ix.lookup_asn(Asn(2119));
        assert!(hit.state_owned);
        assert_eq!(hit.organization.unwrap().org_name, "Telenor");
        assert_eq!(hit.asn, "AS2119");
        let miss = ix.lookup_asn(Asn(9999));
        assert!(!miss.state_owned);
        assert!(miss.organization.is_none());
    }

    #[test]
    fn ip_lookup_is_longest_prefix_match() {
        let ix = fixture();
        // 10.1.x.x falls under the /16 announced by the subsidiary, not
        // the covering /8.
        let a = ix.lookup_ip(Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(a.matched_prefix.as_deref(), Some("10.1.0.0/16"));
        assert_eq!(a.origin.as_deref(), Some("AS24499"));
        assert!(a.state_owned);
        assert_eq!(a.owner.as_deref(), Some("NO"));
        let b = ix.lookup_ip(Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(b.matched_prefix.as_deref(), Some("10.0.0.0/8"));
        assert_eq!(b.organization.as_deref(), Some("Telenor"));
        // Announced by a non-state AS: matched but not state-owned.
        let c = ix.lookup_ip(Ipv4Addr::new(192, 168, 0, 1));
        assert!(!c.state_owned && c.matched_prefix.is_some());
        // Unannounced space.
        let d = ix.lookup_ip(Ipv4Addr::new(8, 8, 8, 8));
        assert!(d.matched_prefix.is_none() && !d.state_owned);
    }

    #[test]
    fn prefix_lookup_finds_covering_announcement() {
        let ix = fixture();
        let a = ix.lookup_prefix("10.1.2.0/24".parse().unwrap());
        assert_eq!(a.matched_prefix.as_deref(), Some("10.1.0.0/16"));
        let b = ix.lookup_prefix("10.0.0.0/8".parse().unwrap());
        assert_eq!(b.matched_prefix.as_deref(), Some("10.0.0.0/8"));
    }

    #[test]
    fn country_rollup_splits_domestic_and_foreign() {
        let ix = fixture();
        let pk = ix.country(cc("PK")).unwrap();
        assert!(pk.has_majority_state_operator, "PTCL is domestic state-owned");
        assert_eq!(pk.domestic_organizations, vec!["PTCL".to_string()]);
        assert_eq!(pk.foreign_organizations, vec!["Telenor Pakistan".to_string()]);
        assert_eq!(pk.foreign_asns, vec![Asn(24499)]);
        // The /16 carve-out of 10.0.0.0/8 belongs to the subsidiary.
        assert_eq!(pk.foreign_announced_addresses, 1 << 16);
        let no = ix.country(cc("NO")).unwrap();
        assert_eq!(no.domestic_asns, vec![Asn(2119), Asn(8210)]);
        // /8 minus the more-specific /16.
        assert_eq!(no.domestic_announced_addresses, (1 << 24) - (1 << 16));
        // A country with no dataset presence still answers, with zeroes.
        let de = ix.country(cc("DE")).unwrap();
        assert!(!de.has_majority_state_operator);
        assert!(de.domestic_organizations.is_empty());
    }

    #[test]
    fn search_pagination_is_stable_and_reports_totals() {
        let ix = fixture();
        // Two "telenor" matches in dataset order.
        let (total, all) = ix.search_page("telenor", 10, 0);
        assert_eq!(total, 2);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].org_name, "Telenor");
        assert_eq!(all[1].org_name, "Telenor Pakistan");
        // Page walking covers the same sequence without skips or repeats.
        let (t1, page1) = ix.search_page("telenor", 1, 0);
        let (t2, page2) = ix.search_page("telenor", 1, 1);
        assert_eq!((t1, t2), (2, 2), "total is offset-independent");
        assert_eq!(page1[0].org_name, "Telenor");
        assert_eq!(page2[0].org_name, "Telenor Pakistan");
        // Offset past the end: empty page, honest total.
        let (t3, page3) = ix.search_page("telenor", 5, 9);
        assert_eq!(t3, 2);
        assert!(page3.is_empty());
        // The unpaginated helper is page zero.
        assert_eq!(ix.search("telenor", 1).len(), 1);
    }

    #[test]
    fn countries_page_orders_by_country_code() {
        let ix = fixture();
        let (total, all) = ix.countries_page(10, 0);
        assert_eq!(total, 2);
        assert_eq!(all[0].country, "NO", "BTreeMap key order: NO before PK");
        assert_eq!(all[1].country, "PK");
        let (_, second) = ix.countries_page(1, 1);
        assert_eq!(second[0].country, "PK");
        let (t, none) = ix.countries_page(10, 2);
        assert_eq!(t, 2);
        assert!(none.is_empty());
    }

    #[test]
    fn asn_conflicts_resolve_to_lowest_org_id() {
        let build = |first_low: bool| {
            let mut low = record("Alpha Telecom", "PK", None, &[7000]);
            low.org_id = Some(OrgId(3));
            let mut high = record("Zeta Telecom", "NO", None, &[7000]);
            high.org_id = Some(OrgId(9));
            let organizations = if first_low { vec![low, high] } else { vec![high, low] };
            let table =
                PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(7000))]).unwrap();
            ServiceIndex::build(Dataset { organizations }, &table)
        };
        // Whichever record enumerates first, the lowest org id wins and
        // the losing claim is counted.
        for first_low in [true, false] {
            let ix = build(first_low);
            assert_eq!(ix.sizes().asn_conflicts, 1, "first_low={first_low}");
            let hit = ix.lookup_asn(Asn(7000));
            assert_eq!(
                hit.organization.unwrap().org_name,
                "Alpha Telecom",
                "first_low={first_low}"
            );
        }
    }

    #[test]
    fn from_snapshot_matches_live_build() {
        use soi_core::{Snapshot, SnapshotBuildInfo};
        let dataset = Dataset {
            organizations: vec![
                record("Telenor", "NO", None, &[2119, 8210]),
                record("PTCL", "PK", None, &[17557]),
            ],
        };
        let table = PrefixToAs::from_entries([
            ("10.0.0.0/8".parse().unwrap(), Asn(2119)),
            ("10.1.0.0/16".parse().unwrap(), Asn(17557)),
        ])
        .unwrap();
        let live = ServiceIndex::build(dataset.clone(), &table);
        let snap = Snapshot::build(dataset, table, SnapshotBuildInfo::default()).expect("snapshot");
        let json = snap.to_json().unwrap();
        let from_snap = ServiceIndex::from_snapshot(Snapshot::from_json(&json).unwrap());
        for asn in [2119u32, 17557, 9999] {
            let a = serde_json::to_value(live.lookup_asn(Asn(asn))).unwrap();
            let b = serde_json::to_value(from_snap.lookup_asn(Asn(asn))).unwrap();
            assert_eq!(a, b, "AS{asn}");
        }
        let a = serde_json::to_value(live.lookup_ip(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        let b = serde_json::to_value(from_snap.lookup_ip(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_value(live.sizes()).unwrap(),
            serde_json::to_value(from_snap.sizes()).unwrap()
        );
    }

    #[test]
    fn search_is_case_insensitive_substring() {
        let ix = fixture();
        let hits = ix.search("telenor", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(ix.search("TELENOR PAK", 10).len(), 1);
        assert!(ix.search("zzz", 10).is_empty());
        assert_eq!(ix.search("telenor", 1).len(), 1, "limit respected");
    }

    #[test]
    fn sizes_and_summary_report_index_cardinalities() {
        let ix = fixture();
        let sizes = ix.sizes();
        assert_eq!(sizes.organizations, 3);
        assert_eq!(sizes.asns, 4);
        assert_eq!(sizes.asn_conflicts, 0, "fixture ASNs are disjoint");
        assert_eq!(sizes.announced_prefixes, 3);
        assert_eq!(sizes.countries, 2);
        let summary = ix.summary();
        assert_eq!(summary.foreign_subsidiaries, 1);
        assert_eq!(summary.state_owned_asns, 4);
        assert_eq!(summary.owner_countries, 2);
    }
}
