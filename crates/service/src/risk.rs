//! The serving side of the risk analyses: cached [`RiskReport`]s.
//!
//! A report is expensive (a full route propagation + CTI pass), so the
//! service computes it at most once per served generation:
//!
//! * the **live** report is keyed by the index slot's generation counter
//!   — a snapshot reload or an applied delta bumps it, so a
//!   hijack-bearing delta (a routing-substrate shift) evicts the cached
//!   report without any explicit invalidation protocol;
//! * **as-of** reports are keyed `(history generation, year)` in the
//!   same deterministic [`TemporalCache`] LRU the as-of index views use.
//!
//! Both paths call [`RiskContext::report`], which recomputes the BGP
//! view from the payload's prefix→AS table — so a `?at=<year>` report is
//! byte-identical to what a from-scratch server over that year's payload
//! would produce (the `tests/risk.rs` oracle).

use std::sync::{Arc, RwLock};
use std::time::Instant;

use soi_history::HistoryError;
use soi_risk::{RiskContext, RiskReport};
use soi_types::SoiError;

use crate::history::HistoryService;
use crate::metrics::Metrics;
use crate::reload::IndexSlot;

/// As-of reports kept hot; reports are small next to the indexes the
/// history LRU holds, but there is no reason to outlive them.
pub const DEFAULT_RISK_CACHE_CAPACITY: usize = 8;

/// Why a risk report could not be served.
#[derive(Debug)]
pub enum RiskServiceError {
    /// The slot tracks no payload (plain `serve` without snapshot/
    /// pipeline payload attachment), so there is nothing to analyze.
    NoPayload,
    /// As-of resolution failed (unknown year, corrupt store, ...).
    History(HistoryError),
    /// The analyses themselves failed (e.g. an empty monitor set).
    Compute(SoiError),
}

impl std::fmt::Display for RiskServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RiskServiceError::NoPayload => {
                write!(f, "server tracks no payload; risk reports need one")
            }
            RiskServiceError::History(e) => write!(f, "as-of resolution failed: {e}"),
            RiskServiceError::Compute(e) => write!(f, "risk computation failed: {e}"),
        }
    }
}

/// A [`RiskContext`] plus the generation-keyed report caches.
pub struct RiskService {
    context: RiskContext,
    threads: usize,
    /// `(slot generation, report)` for the live payload.
    live: RwLock<Option<(u64, Arc<RiskReport>)>>,
    /// `(history generation, year)` → report.
    as_of: soi_history::TemporalCache<Arc<RiskReport>>,
}

impl RiskService {
    /// Wraps a context; `threads` is the worker count report computation
    /// shards over (0 = one per core; any value is byte-identical).
    pub fn new(context: RiskContext, threads: usize) -> RiskService {
        RiskService {
            context,
            threads,
            live: RwLock::new(None),
            as_of: soi_history::TemporalCache::new(DEFAULT_RISK_CACHE_CAPACITY),
        }
    }

    /// The analysis context (topology, monitors, geolocation).
    pub fn context(&self) -> &RiskContext {
        &self.context
    }

    /// The report for the live served payload, computed on first use per
    /// index generation. A reload or applied delta bumps the generation
    /// and thereby invalidates the cached report.
    pub fn live_report(
        &self,
        slot: &IndexSlot,
        metrics: &Metrics,
    ) -> Result<Arc<RiskReport>, RiskServiceError> {
        metrics.record_risk_request();
        let generation = slot.generation();
        if let Some((cached, report)) = self.live.read().expect("risk live lock").clone() {
            if cached == generation {
                metrics.record_risk_cache_hit();
                return Ok(report);
            }
        }
        let Some((payload, _)) = slot.payload() else {
            return Err(RiskServiceError::NoPayload);
        };
        let started = Instant::now();
        let report = self
            .context
            .report(&payload.dataset, &payload.table, self.threads)
            .map_err(RiskServiceError::Compute)?;
        metrics
            .record_risk_computed(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let report = Arc::new(report);
        // Last writer wins; any winner computed the same bytes for this
        // generation (determinism contract), so racing is harmless.
        *self.live.write().expect("risk live lock") = Some((generation, Arc::clone(&report)));
        Ok(report)
    }

    /// The report as of `year`, resolved through the history store and
    /// cached per `(generation, year)`.
    pub fn report_at(
        &self,
        year: u32,
        history: &HistoryService,
        metrics: &Metrics,
    ) -> Result<Arc<RiskReport>, RiskServiceError> {
        metrics.record_risk_request();
        let generation = history.generation();
        if let Some(report) = self.as_of.get(generation, year) {
            metrics.record_risk_cache_hit();
            return Ok(report);
        }
        let (payload, _stats) = history.store().resolve(year).map_err(RiskServiceError::History)?;
        let started = Instant::now();
        let report = self
            .context
            .report(&payload.dataset, &payload.table, self.threads)
            .map_err(RiskServiceError::Compute)?;
        metrics
            .record_risk_computed(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let report = Arc::new(report);
        self.as_of.insert(generation, year, Arc::clone(&report));
        Ok(report)
    }
}

impl std::fmt::Debug for RiskService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RiskService").field("threads", &self.threads).finish()
    }
}
