//! A thin, std-only epoll wrapper for the event-driven serving path.
//!
//! The workspace policy is "no async runtime, no I/O dependency", so
//! this binds the four epoll syscalls (plus `pipe2` for cross-thread
//! wakeups) directly via `extern "C"` — the same precedent as
//! `signal(2)` in [`crate::server::install_signal_handlers`]. Everything
//! here is Linux-only and the module is compiled out elsewhere; the
//! server falls back to the threaded engine on other platforms.
//!
//! The wrapper is deliberately minimal: level-triggered interest only
//! (the event loop re-arms interest explicitly, so missed-edge bugs
//! cannot exist), one `u64` of user data per registration (the
//! connection token), and a [`Waker`] built on a non-blocking pipe so
//! worker threads can interrupt [`Poller::wait`].

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// The socket has readable data (or a pending accept).
pub const EPOLLIN: u32 = 0x1;
/// The socket accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported, no need to request).
pub const EPOLLERR: u32 = 0x8;
/// Hangup (always reported, no need to request).
pub const EPOLLHUP: u32 = 0x10;
/// Peer closed its write half (must be requested).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness notification. The layout matches the kernel ABI:
/// x86-64 packs the struct (a 32-bit `events` followed by an unaligned
/// 64-bit `data`), every other Linux arch aligns it normally.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty slot for [`Poller::wait`] to fill.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub fn events(&self) -> u32 {
        // A copy, not a reference: the field may be unaligned (packed).
        let events = self.events;
        events
    }

    /// The token supplied at registration.
    pub fn token(&self) -> u64 {
        let data = self.data;
        data
    }
}

/// Owns one epoll instance. Registrations are level-triggered.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events: interest, data: token };
        let event_ptr =
            if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut event as *mut EpollEvent };
        if unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd`, delivering `token` with each notification.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Replaces the interest set for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stops watching `fd` (dropping the fd does this implicitly; the
    /// explicit call keeps the kernel set tidy while the fd lives on).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills
    /// `events` from the front and returns how many are valid. A signal
    /// interruption reports as zero events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n =
            unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

struct WakeFds {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakeFds {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Interrupts a [`Poller::wait`] from another thread: the read end of a
/// non-blocking pipe is registered with the poller, and [`Waker::wake`]
/// writes one byte to the other end. Cloneable so every worker thread
/// can hold one.
#[derive(Clone)]
pub struct Waker(Arc<WakeFds>);

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker(Arc::new(WakeFds { read_fd: fds[0], write_fd: fds[1] })))
    }

    /// The fd to register (`EPOLLIN`) with the poller.
    pub fn read_fd(&self) -> RawFd {
        self.0.read_fd
    }

    /// Makes the next (or current) `wait` return. A full pipe means a
    /// wakeup is already pending, so the failure is ignored.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.0.write_fd, &byte as *const u8, 1) };
    }

    /// Consumes pending wakeup bytes so a level-triggered poller stops
    /// reporting the pipe readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while unsafe { read(self.0.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn reports_readable_data_with_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing to read yet: a short wait times out with zero events.
        assert_eq!(poller.wait(&mut events, 50).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        // Level-triggered: drained socket is no longer readable.
        assert_eq!(poller.wait(&mut events, 50).unwrap(), 0);
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest_between_read_and_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        // An idle socket is writable immediately.
        poller.add(server.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events() & EPOLLOUT, 0);

        // Switch to read interest: quiet until the client sends.
        poller.modify(server.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(poller.wait(&mut events, 50).unwrap(), 0);
        client.write_all(b"x").unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token(), 7);
    }

    #[test]
    fn waker_interrupts_wait_and_drains_clean() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.read_fd(), EPOLLIN, 1).unwrap();

        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            remote.wake();
        });
        let mut events = [EpollEvent::zeroed(); 8];
        let n = poller.wait(&mut events, 5000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 1);
        waker.drain();
        assert_eq!(poller.wait(&mut events, 50).unwrap(), 0, "drained pipe goes quiet");
        handle.join().unwrap();
    }
}
