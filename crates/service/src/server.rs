//! The HTTP server: one wire protocol, two interchangeable engines.
//!
//! [`IoMode::Threaded`] is the original thread-per-connection design
//! (all blocking `std::net`, no async runtime):
//!
//! ```text
//!  acceptor thread ──► bounded queue ──► N worker threads
//!       │                   │                    │
//!       │ queue full: 503   │ depth gauge        │ parse → route → respond
//!       ▼                   ▼                    ▼ per-request timeouts
//!  graceful shutdown: stop accepting, drain the queue, finish in-flight
//!  requests, close keep-alive connections at the next message boundary.
//! ```
//!
//! [`IoMode::Epoll`] (the default on Linux, see [`crate::event`]) keeps
//! the same worker pool but replaces the blocking accept/read loop with
//! readiness-based I/O: one event-loop thread owns every socket and a
//! connection state machine (reading → dispatch → writing → keep-alive
//! idle), dispatching parsed requests to the workers over the same
//! bounded queue. Both engines answer through
//! [`handlers::respond_cached`], so their responses are byte-identical —
//! `tests/serve.rs` proves it at the socket layer.
//!
//! Backpressure is explicit in both modes: the threaded acceptor answers
//! `503` when the handoff queue is full, and the event loop sheds
//! requests by admission tier (`search`/`risk`/`history` first, then
//! everything but ops) before the job queue saturates.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::handlers;
use crate::history::HistoryService;
use crate::http::{self, HttpError, Response};
use crate::index::ServiceIndex;
use crate::metrics::{Metrics, MetricsSnapshot, ServiceStatus};
use crate::reload::{IndexSlot, Reloader};
use crate::respcache::RespCache;
use crate::risk::RiskService;

/// Everything a worker needs to answer a request: the swappable index
/// slot, the shared metrics, (when serving from a snapshot file) the
/// reloader behind `POST /admin/reload`, (when serving a history
/// directory) the as-of view service behind `?at=` and `/v1/history`,
/// (when the run's topology context is available) the risk-report
/// service behind `/v1/risk`, and the generation-keyed response cache
/// (`None` disables caching; responses are identical either way).
pub struct ServerState {
    pub slot: Arc<IndexSlot>,
    pub metrics: Arc<Metrics>,
    pub reloader: Option<Reloader>,
    pub history: Option<Arc<HistoryService>>,
    pub risk: Option<Arc<RiskService>>,
    pub respcache: Option<RespCache>,
}

impl ServerState {
    /// Point-in-time view of what is being served (for `/metrics`).
    pub fn status(&self) -> ServiceStatus {
        self.slot.status()
    }
}

/// Which engine moves bytes between the sockets and the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// Thread-per-connection with blocking reads: the acceptor hands
    /// whole connections to workers over the bounded queue.
    Threaded,
    /// Readiness-based: one event-loop thread owns every socket via
    /// epoll and hands *parsed requests* to the same worker pool.
    /// Falls back to [`IoMode::Threaded`] off Linux.
    Epoll,
}

impl IoMode {
    /// The mode actually used on this platform (epoll is Linux-only).
    pub fn effective(self) -> IoMode {
        if cfg!(target_os = "linux") {
            self
        } else {
            IoMode::Threaded
        }
    }
}

impl Default for IoMode {
    /// Epoll where available: it is the production path, and defaulting
    /// it on means the whole test suite exercises the event loop.
    fn default() -> Self {
        IoMode::Epoll.effective()
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections (threaded mode) or requests
    /// (epoll mode).
    pub workers: usize,
    /// Threaded mode: accepted connections allowed to wait for a worker
    /// before the acceptor answers 503. Epoll mode: dispatched requests
    /// allowed to wait for a worker before admission control sheds
    /// (heavy tiers at half this depth, everything but ops when full).
    pub queue_capacity: usize,
    /// Per-request read timeout (also bounds how long an idle keep-alive
    /// connection can hold a worker, and therefore shutdown latency).
    pub read_timeout: Duration,
    /// Per-response write timeout.
    pub write_timeout: Duration,
    /// Requests served per connection before it is recycled.
    pub max_requests_per_connection: usize,
    /// The engine (see [`IoMode`]).
    pub io: IoMode,
    /// Epoll mode: open sockets the event loop will hold before
    /// answering new connections with an immediate 503.
    pub max_connections: usize,
    /// Epoll mode: pipelined requests in flight per connection before
    /// the loop stops reading from that socket (read resumes as
    /// responses flush).
    pub max_pipeline_depth: usize,
    /// Rendered responses the [`RespCache`] holds; 0 disables caching.
    pub respcache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_connection: 10_000,
            io: IoMode::default(),
            max_connections: 1024,
            max_pipeline_depth: 32,
            respcache_capacity: crate::respcache::DEFAULT_RESPCACHE_CAPACITY,
        }
    }
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC handoff: whole connections in threaded mode
/// (acceptor → workers), parsed requests in epoll mode
/// (event loop → workers).
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues unless full or closed; the item comes back on refusal so
    /// the caller can answer 503 for it.
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained — the
    /// property that makes shutdown serve everything already accepted.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue wait");
        }
    }

    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The engine-specific half of a running server.
enum Engine {
    /// Acceptor thread + connection handoff queue.
    Threaded { queue: Arc<BoundedQueue<TcpStream>>, acceptor: Option<JoinHandle<()>> },
    /// Event-loop thread + request handoff queue + its wakeup pipe.
    #[cfg(target_os = "linux")]
    Event {
        jobs: Arc<BoundedQueue<crate::event::Job>>,
        waker: crate::poll::Waker,
        event_loop: Option<JoinHandle<()>>,
    },
}

/// A running server. Dropping the handle shuts the server down
/// gracefully; [`ServerHandle::shutdown`] does the same and returns the
/// final metrics.
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    engine: Engine,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// The shared server state (index slot, metrics, reloader).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The reloader behind `POST /admin/reload`, when serving from a
    /// snapshot file. The `soi serve` loop uses this to honour SIGHUP.
    pub fn reloader(&self) -> Option<&Reloader> {
        self.state.reloader.as_ref()
    }

    /// Point-in-time metrics snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.state.metrics.snapshot(self.queue_depth(), &self.state.status())
    }

    fn queue_depth(&self) -> usize {
        match &self.engine {
            Engine::Threaded { queue, .. } => queue.depth(),
            #[cfg(target_os = "linux")]
            Engine::Event { jobs, .. } => jobs.depth(),
        }
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// accepted or queued, finish in-flight requests, join all threads.
    /// Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.state.metrics.snapshot(0, &self.state.status())
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        match &mut self.engine {
            Engine::Threaded { queue, acceptor } => {
                if acceptor.is_none() && self.workers.is_empty() {
                    return;
                }
                // Unblock the acceptor's blocking accept(2) with a
                // throwaway connection to ourselves.
                let mut wake = self.local_addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
                }
                let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                // The acceptor closes the queue on exit; repeat here in
                // case it died some other way. Idempotent.
                queue.close();
            }
            #[cfg(target_os = "linux")]
            Engine::Event { jobs, waker, event_loop } => {
                if event_loop.is_none() && self.workers.is_empty() {
                    return;
                }
                // The loop notices the flag on the next wakeup, stops
                // accepting, drains every connection to a message
                // boundary, then closes the job queue and exits.
                waker.wake();
                if let Some(event_loop) = event_loop.take() {
                    let _ = event_loop.join();
                }
                jobs.close();
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves a fixed index (no reload). Convenience wrapper
/// over [`serve_with`] for callers that build the index in-process.
pub fn serve(
    index: Arc<ServiceIndex>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_with(Arc::new(IndexSlot::new(index, None)), None, addr, cfg)
}

/// Binds `addr` and starts the acceptor and worker threads, serving
/// whatever `slot` currently holds. Passing a `reloader` enables
/// `POST /admin/reload` (and SIGHUP-driven reloads via the caller).
pub fn serve_with(
    slot: Arc<IndexSlot>,
    reloader: Option<Reloader>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_history(slot, reloader, None, addr, cfg)
}

/// [`serve_with`] plus an optional [`HistoryService`]: when given, the
/// `/v1` read routes accept `?at=<year>` and `/v1/history/org/{id}`
/// serves ownership timelines.
pub fn serve_history(
    slot: Arc<IndexSlot>,
    reloader: Option<Reloader>,
    history: Option<Arc<HistoryService>>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_full(slot, reloader, history, None, addr, cfg)
}

/// [`serve_history`] plus an optional [`RiskService`]: when given, the
/// `/v1/risk/country/{cc}`, `/v1/risk/chokepoints/{cc}` and
/// `/v1/risk/classes` routes serve the derived risk report for the live
/// payload, or for any stored year via `?at=<year>`.
pub fn serve_full(
    slot: Arc<IndexSlot>,
    reloader: Option<Reloader>,
    history: Option<Arc<HistoryService>>,
    risk: Option<Arc<RiskService>>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let respcache = (cfg.respcache_capacity > 0).then(|| RespCache::new(cfg.respcache_capacity));
    let state = Arc::new(ServerState {
        slot,
        metrics: Arc::new(Metrics::new()),
        reloader,
        history,
        risk,
        respcache,
    });
    let shutdown = Arc::new(AtomicBool::new(false));

    #[cfg(target_os = "linux")]
    if cfg.io.effective() == IoMode::Epoll {
        return crate::event::serve_event(listener, local_addr, state, shutdown, cfg);
    }

    let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity.max(1)));

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name(format!("soi-service-worker-{i}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(stream, &state, &queue, &shutdown, &cfg);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();

    let acceptor = {
        let metrics = Arc::clone(&state.metrics);
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        let write_timeout = cfg.write_timeout;
        std::thread::Builder::new()
            .name("soi-service-acceptor".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    metrics.record_connection();
                    if let Err(mut refused) = queue.try_push(stream) {
                        metrics.record_rejected();
                        let _ = refused.set_write_timeout(Some(write_timeout));
                        let _ = Response::error(503, "accept queue full, retry later")
                            .write_to(&mut refused, false);
                    }
                }
                queue.close();
            })
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        local_addr,
        state,
        engine: Engine::Threaded { queue, acceptor: Some(acceptor) },
        shutdown,
        workers,
    })
}

/// Assembles a handle for the event engine (fields are private to this
/// module; [`crate::event::serve_event`] builds everything else).
#[cfg(target_os = "linux")]
pub(crate) fn event_handle(
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    jobs: Arc<BoundedQueue<crate::event::Job>>,
    waker: crate::poll::Waker,
    event_loop: JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
) -> ServerHandle {
    ServerHandle {
        local_addr,
        state,
        engine: Engine::Event { jobs, waker, event_loop: Some(event_loop) },
        shutdown,
        workers,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &ServerState,
    queue: &BoundedQueue<TcpStream>,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    let metrics = &*state.metrics;
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);

    for served in 0..cfg.max_requests_per_connection {
        match http::read_request(&mut reader) {
            Ok(req) => {
                metrics.begin_request();
                let start = Instant::now();
                let (route, response) = handlers::respond_cached(state, queue.depth(), &req);
                // During drain, finish this response but advertise (and
                // enforce) closure so the connection reaches a boundary.
                let keep = req.keep_alive
                    && !shutdown.load(Ordering::Acquire)
                    && served + 1 < cfg.max_requests_per_connection;
                let wrote = response.write_to_opts(&mut stream, keep, req.method == "HEAD");
                metrics.record_request(route, response.status, start.elapsed());
                metrics.end_request();
                if !keep || wrote.is_err() {
                    break;
                }
            }
            Err(HttpError::Closed) => break,
            Err(HttpError::Timeout) => {
                // Idle keep-alive connection or stalled sender; reclaim
                // the worker.
                metrics.record_timeout();
                break;
            }
            Err(HttpError::Io(_)) => break,
            // Parse-error responses carry no meaningful service time (the
            // clock would start mid-read, counting idle keep-alive wait),
            // so they are counted without a latency sample — recording
            // Duration::ZERO here used to drag p50/p95 toward zero under
            // garbage traffic.
            Err(HttpError::BadRequest(message)) => {
                let response = Response::error(400, &message);
                let _ = response.write_to(&mut stream, false);
                metrics.record_request_unmeasured("other", 400);
                break;
            }
            Err(HttpError::TooLarge(message)) => {
                let response = Response::error(431, &message);
                let _ = response.write_to(&mut stream, false);
                metrics.record_request_unmeasured("other", 431);
                break;
            }
            Err(HttpError::NotImplemented(message)) => {
                // e.g. Transfer-Encoding: chunked. The body framing is
                // unknown, so the connection cannot be reused: answer and
                // close at this boundary rather than misparse the stream.
                let response = Response::error(501, &message);
                let _ = response.write_to(&mut stream, false);
                metrics.record_request_unmeasured("other", 501);
                break;
            }
        }
    }
}

static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);
static RELOAD_FLAG: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been observed (after
/// [`install_signal_handlers`]). The `soi serve` loop polls this to turn
/// signals into a graceful drain.
pub fn shutdown_requested() -> bool {
    SIGNAL_FLAG.load(Ordering::Relaxed)
}

/// True once per SIGHUP observed (after [`install_signal_handlers`]) —
/// reading consumes the flag, so one signal triggers one reload. The
/// `soi serve` loop polls this and calls [`Reloader::reload`].
pub fn reload_requested() -> bool {
    RELOAD_FLAG.swap(false, Ordering::Relaxed)
}

/// Installs best-effort SIGINT/SIGTERM/SIGHUP handlers that set the flags
/// read by [`shutdown_requested`] and [`reload_requested`]. Uses
/// `signal(2)` from libc directly (the workspace has no signal-handling
/// dependency); the handlers only touch atomics, which is
/// async-signal-safe. No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_FLAG.store(true, Ordering::Relaxed);
    }
    extern "C" fn on_hup(_signum: i32) {
        RELOAD_FLAG.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGHUP, on_hup as extern "C" fn(i32) as usize);
    }
}

/// No-op fallback where `signal(2)` is unavailable.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_bgp::PrefixToAs;
    use soi_core::{Dataset, OrgRecord};
    use soi_types::{Asn, OrgId, Rir};
    use std::io::{BufRead, Read, Write};

    fn test_index() -> Arc<ServiceIndex> {
        let rec = OrgRecord {
            conglomerate_name: "Telenor".into(),
            org_id: Some(OrgId(1)),
            org_name: "Telenor".into(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: vec![Asn(2119)],
        };
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        Arc::new(ServiceIndex::build(Dataset { organizations: vec![rec] }, &table))
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        }
    }

    /// One blocking GET returning (status, body).
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let handle = serve(test_index(), ("127.0.0.1", 0), test_config()).unwrap();
        let addr = handle.local_addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("ok"), "{body}");
        let (status, body) = get(addr, "/asn/AS2119");
        assert_eq!(status, 200);
        assert!(body.contains("\"state_owned\":true"), "{body}");
        let (status, _) = get(addr, "/no/such/route");
        assert_eq!(status, 404);
        let snap = handle.shutdown();
        assert!(snap.requests_total >= 3);
        assert!(snap.latency.p50_micros > 0, "histogram populated");
        // The port is released: connecting now must fail.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let handle = serve(test_index(), ("127.0.0.1", 0), test_config()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        for _ in 0..3 {
            write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("200"), "{line}");
            let mut content_length = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                if h.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
        }
        let snap = handle.shutdown();
        assert!(snap.requests_total >= 3);
        assert!(snap.connections_total < 3, "one connection carried them all");
    }

    #[test]
    fn bad_requests_get_400_not_a_hang() {
        let handle = serve(test_index(), ("127.0.0.1", 0), test_config()).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("400"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn malformed_requests_do_not_pollute_latency_quantiles() {
        let handle = serve(test_index(), ("127.0.0.1", 0), test_config()).unwrap();
        let addr = handle.local_addr();
        // A few real requests populate the histogram...
        for _ in 0..4 {
            let (status, _) = get(addr, "/asn/AS2119");
            assert_eq!(status, 200);
        }
        let (_, body) = get(addr, "/metrics");
        let before: serde_json::Value = serde_json::from_str(&body).unwrap();
        let measured = before["latency"]["count"].as_u64().unwrap();
        assert!(measured >= 5, "{before}");
        // ...then a burst of garbage draws 400s. Each one must count as a
        // request and an error but add no histogram sample (the old
        // Duration::ZERO samples dragged p50 to zero here).
        for _ in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GARBAGE REQUEST\r\n\r\n").unwrap();
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            assert!(line.contains("400"), "{line}");
        }
        let (_, body) = get(addr, "/metrics");
        let after: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(after["responses_error"].as_u64().unwrap() >= 20, "{after}");
        assert!(after["per_route"]["other"].as_u64().unwrap() >= 20, "{after}");
        // The /metrics GETs above are measured; the 20 garbage requests
        // are not.
        let measured_after = after["latency"]["count"].as_u64().unwrap();
        assert!(measured_after < measured + 20, "garbage must not be sampled: {after}");
        assert!(after["latency"]["p50_micros"].as_u64().unwrap() > 0, "{after}");
        let snap = handle.shutdown();
        assert!(snap.latency.p50_micros > 0, "quantiles reflect served requests only");
    }

    #[test]
    fn drop_performs_shutdown() {
        let addr;
        {
            let handle = serve(test_index(), ("127.0.0.1", 0), test_config()).unwrap();
            addr = handle.local_addr();
            let (status, _) = get(addr, "/healthz");
            assert_eq!(status, 200);
        }
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
