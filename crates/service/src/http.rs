//! Hand-rolled HTTP/1.1 request parsing and response rendering.
//!
//! The service is synchronous by design (like the rest of the workspace —
//! see DESIGN.md §3), so this is a small, strict subset of HTTP/1.1 over
//! blocking `std::net` streams: GET requests, bounded line/header sizes,
//! percent-decoded paths and query strings, keep-alive, and
//! `Content-Length`-framed JSON responses. Written in the same
//! render/parse spirit as `soi-bgp`'s bgpdump support.

use std::io::{BufRead, Write};

use serde::Serialize;

/// Longest accepted request line or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body, bytes. Sized for the write path: a
/// paper-scale `POST /admin/delta` document carries full org records both
/// ways plus prefix mappings, which can reach hundreds of kilobytes.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// Why a request could not be served from the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection cleanly before sending a request line.
    Closed,
    /// The read timed out (idle keep-alive connection or slow client).
    Timeout,
    /// Any other transport failure.
    Io(std::io::Error),
    /// The bytes were not a well-formed request; the message is safe to
    /// echo back in a 400 response.
    BadRequest(String),
    /// The request exceeded a size bound; maps to 431/413.
    TooLarge(String),
    /// The request uses a protocol feature this server does not implement
    /// (chunked transfer coding); maps to 501. The connection must close:
    /// without parsing the unsupported body framing, the next message
    /// boundary is unknowable.
    NotImplemented(String),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            std::io::ErrorKind::UnexpectedEof => HttpError::Closed,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `HEAD`, ...).
    pub method: String,
    /// Percent-decoded path, query string excluded. Always starts `/`.
    /// For display/logging only — routing must use [`Request::segments`],
    /// where an encoded `%2F` stays *inside* its segment instead of
    /// collapsing into this string as a separator.
    pub path: String,
    /// Non-empty path segments, split on the **raw** (still-encoded)
    /// path and percent-decoded individually, so `/asn%2FAS1` is the
    /// single segment `asn/AS1`, not the route `asn`/`AS1`.
    segments: Vec<String>,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// True when the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
    /// Raw `If-None-Match` header value, if the client sent one. The
    /// conditional-request layer compares it against a response's strong
    /// `ETag` and downgrades matches to `304 Not Modified`.
    pub if_none_match: Option<String>,
    /// Request body bytes (empty for the common GET case). Bounded by
    /// `MAX_BODY`; always fully consumed so keep-alive framing holds.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Path split into non-empty `/`-separated segments, each
    /// percent-decoded after the split (see the `segments` field).
    pub fn segments(&self) -> Vec<&str> {
        self.segments.iter().map(String::as_str).collect()
    }
}

/// Reads one request from a buffered stream.
///
/// Returns [`HttpError::Closed`] on clean EOF before the request line, so
/// keep-alive loops can distinguish "client done" from real failures.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let line = read_line(reader)?;
    if line.is_empty() {
        return Err(HttpError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => return Err(HttpError::BadRequest(format!("malformed request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version: {version:?}")));
    }
    let http11 = version == "HTTP/1.1";

    // Headers: we only act on Connection, Content-Length and
    // Transfer-Encoding.
    let mut keep_alive = http11;
    let mut content_length: usize = 0;
    let mut transfer_encoding: Option<String> = None;
    let mut if_none_match: Option<String> = None;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers".into()));
        }
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header: {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad content-length: {value:?}")))?;
            }
            "transfer-encoding" => {
                let v = value.to_ascii_lowercase();
                if v != "identity" {
                    transfer_encoding = Some(v);
                }
            }
            "if-none-match" => {
                if_none_match = Some(value.to_owned());
            }
            _ => {}
        }
    }

    // A transfer coding we don't implement means the body length is
    // unknowable with Content-Length framing alone. Treating it as a
    // zero-length body would leave the chunked bytes on the stream to be
    // parsed as the *next* request — so refuse outright (the 501 response
    // closes the connection).
    if let Some(coding) = transfer_encoding {
        return Err(HttpError::NotImplemented(format!(
            "transfer-encoding {coding:?} not supported"
        )));
    }

    // Read the full body (the admin write path consumes it; everything
    // else ignores it) so the next keep-alive request starts at a
    // message boundary.
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge(format!("body of {content_length} bytes")));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        let got = std::io::Read::read(reader, &mut body[filled..]).map_err(HttpError::from)?;
        if got == 0 {
            return Err(HttpError::BadRequest("body shorter than content-length".into()));
        }
        filled += got;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    if !raw_path.starts_with('/') {
        return Err(HttpError::BadRequest(format!("non-absolute path: {raw_path:?}")));
    }
    // Split on the raw path FIRST, then decode each segment: decoding
    // before splitting would let an encoded `%2F` forge a route
    // separator (`/asn%2FAS1` must not route as `/asn/AS1`).
    let segments: Vec<String> =
        raw_path.split('/').filter(|s| !s.is_empty()).map(|s| percent_decode(s, false)).collect();
    let path = percent_decode(raw_path, false);
    let query = raw_query.map(parse_query).unwrap_or_default();

    Ok(Request { method, path, segments, query, keep_alive, if_none_match, body })
}

/// Attempts to parse one complete request from the front of `buf`
/// without blocking: the event-driven server feeds it whatever bytes the
/// socket has yielded so far.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a request
/// (more bytes needed), `Ok(Some((request, consumed)))` when a full
/// message was parsed (`consumed` bytes must be drained from the
/// buffer), and `Err` with exactly the [`read_request`] error taxonomy
/// for malformed or oversized input, so both server modes answer
/// identically.
pub fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(header_end) = find_header_end(buf) else {
        // No header terminator yet. Bound what a slow (or malicious)
        // client can make us buffer: the request line alone may not
        // exceed MAX_LINE, and the whole header block is capped by the
        // same line/count limits read_request enforces.
        let first_line_done = buf.contains(&b'\n');
        if !first_line_done && buf.len() > MAX_LINE {
            return Err(HttpError::TooLarge("request line too long".into()));
        }
        if buf.len() > (MAX_HEADERS + 2) * MAX_LINE {
            return Err(HttpError::TooLarge("too many headers".into()));
        }
        return Ok(None);
    };
    // Pre-scan Content-Length so only complete messages reach the real
    // parser. A malformed value falls through: read_request reports it.
    if let Some(needed) = content_length_hint(&buf[..header_end]) {
        if needed > MAX_BODY {
            return Err(HttpError::TooLarge(format!("body of {needed} bytes")));
        }
        if header_end + needed > buf.len() {
            return Ok(None);
        }
    }
    let mut cursor = std::io::Cursor::new(buf);
    let request = read_request(&mut cursor)?;
    Ok(Some((request, cursor.position() as usize)))
}

/// Index one past the blank line ending the header block, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if buf[i + 1..].starts_with(b"\n") {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Last well-formed `Content-Length` value in a header block, mirroring
/// read_request's last-wins overwrite. `None` means absent or malformed
/// — either way the header block alone is a complete message for the
/// pre-scan's purposes (the malformed case errors in read_request).
fn content_length_hint(head: &[u8]) -> Option<usize> {
    let mut length = None;
    for line in head.split(|&b| b == b'\n') {
        let line = String::from_utf8_lossy(line);
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            length = value.trim().parse::<usize>().ok();
        }
    }
    length
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(64);
    loop {
        if buf.len() > MAX_LINE {
            return Err(HttpError::TooLarge("request line too long".into()));
        }
        let mut byte = [0u8; 1];
        let got = std::io::Read::read(reader, &mut byte).map_err(HttpError::from)?;
        if got == 0 {
            if buf.is_empty() {
                return Ok(String::new());
            }
            return Err(HttpError::BadRequest("stream ended mid-line".into()));
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadRequest("non-UTF-8 request bytes".into()))
}

/// Decodes `%XX` escapes (and, in query mode, `+` as space). Invalid
/// escapes pass through literally.
pub fn percent_decode(s: &str, query_mode: bool) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => match (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' if query_mode => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// A rendered response, ready to write.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes (always JSON for this API).
    pub body: Vec<u8>,
    /// Extra response headers beyond the Content-Type/Content-Length/
    /// Connection set every response carries (e.g. `Deprecation` on the
    /// legacy unversioned routes).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// Serializes `value` as the JSON body of a response.
    pub fn json<T: Serialize>(status: u16, value: &T) -> Response {
        match serde_json::to_vec(value) {
            Ok(body) => Response { status, body, headers: Vec::new() },
            Err(e) => Response::error(500, &format!("serialization failed: {e}")),
        }
    }

    /// The legacy (unversioned) API's error shape: `{"error": "message"}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = format!("{{\"error\":{}}}", json_string(message));
        Response { status, body: body.into_bytes(), headers: Vec::new() }
    }

    /// The `/v1` API's uniform error envelope:
    /// `{"error": {"code": ..., "message": ..., "detail": ...}}`.
    /// `code` is a stable machine-readable token; `message` is a short
    /// human sentence; `detail` carries the offending input (or null).
    pub fn api_error(status: u16, code: &str, message: &str, detail: Option<&str>) -> Response {
        let detail = detail.map_or("null".to_owned(), json_string);
        let body = format!(
            "{{\"error\":{{\"code\":{},\"message\":{},\"detail\":{}}}}}",
            json_string(code),
            json_string(message),
            detail,
        );
        Response { status, body: body.into_bytes(), headers: Vec::new() }
    }

    /// Returns the response with an extra header appended.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// First value of extra header `name` (case-insensitive), if set.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Serializes the full wire form of the response. `keep_alive`
    /// controls the advertised `Connection` disposition; `head_only`
    /// omits the body while keeping its `Content-Length` (the HEAD
    /// contract: identical headers, no payload).
    pub fn render(&self, keep_alive: bool, head_only: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut out = head.into_bytes();
        if !head_only {
            out.extend_from_slice(&self.body);
        }
        out
    }

    /// Writes status line, headers and body. `keep_alive` controls the
    /// advertised `Connection` disposition.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        self.write_to_opts(writer, keep_alive, false)
    }

    /// [`Response::write_to`] with HEAD handling: `head_only` suppresses
    /// the body bytes but keeps the entity's `Content-Length`.
    pub fn write_to_opts(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
        head_only: bool,
    ) -> std::io::Result<()> {
        writer.write_all(&self.render(keep_alive, head_only))?;
        writer.flush()
    }
}

/// Reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Minimal JSON string escaping for hand-built error bodies.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        let mut r = BufReader::new(raw.as_bytes());
        read_request(&mut r)
    }

    #[test]
    fn parses_request_line_path_and_query() {
        let req = parse("GET /search?q=telenor+asa&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query_param("q"), Some("telenor asa"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn percent_decoding_applies() {
        let req = parse("GET /search?q=t%C3%A9l%C3%A9com HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("q"), Some("télécom"));
        assert_eq!(percent_decode("/a%2Fb", false), "/a/b");
        assert_eq!(percent_decode("a%zz", false), "a%zz", "bad escape passes through");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_garbage_and_reports_clean_close() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_not_misframed() {
        // Before the fix, the chunked body below was treated as a
        // zero-length body and its bytes were parsed as the next request —
        // desynchronizing keep-alive framing. It must be refused instead.
        let raw = "POST /healthz HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                   5\r\nhello\r\n0\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::NotImplemented(_))));
        // Case-insensitive header name and value.
        let raw = "GET / HTTP/1.1\r\ntransfer-encoding: Chunked\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::NotImplemented(_))));
        // `identity` is a no-op coding and stays accepted.
        let req = parse("GET / HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n").unwrap();
        assert_eq!(req.path, "/");
        assert_eq!(reason(501), "Not Implemented");
    }

    #[test]
    fn reads_body_and_keeps_framing() {
        let raw =
            "GET /healthz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        let first = read_request(&mut r).unwrap();
        assert_eq!(first.path, "/healthz");
        assert_eq!(first.body, b"hello", "body is retained for the admin write path");
        // Framing holds: the next request starts exactly after the body.
        let second = read_request(&mut r).unwrap();
        assert_eq!(second.path, "/next");
        assert!(second.body.is_empty());
        // A short body is a framing error, not a silent truncation.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn renders_response_with_length_framing() {
        let resp = Response::json(200, &serde_json::json!({"ok": true}));
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: "));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
        let err = Response::error(404, "no such route \"x\"");
        assert_eq!(err.status, 404);
        assert!(String::from_utf8(err.body).unwrap().contains("\\\"x\\\""));
    }

    #[test]
    fn api_error_envelope_and_extra_headers() {
        let resp = Response::api_error(400, "invalid_limit", "limit must be 1..=100", Some("junk"));
        let body = String::from_utf8(resp.body.clone()).unwrap();
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"invalid_limit\",\
             \"message\":\"limit must be 1..=100\",\"detail\":\"junk\"}}"
        );
        // Envelope must be valid JSON even with quoting in the detail.
        let quoted = Response::api_error(404, "not_found", "no route", Some("a\"b"));
        let v: serde_json::Value =
            serde_json::from_slice(&quoted.body).expect("envelope is valid JSON");
        assert_eq!(v["error"]["detail"].as_str(), Some("a\"b"));
        let null = Response::api_error(404, "not_found", "no route", None);
        let v: serde_json::Value = serde_json::from_slice(&null.body).unwrap();
        assert!(v["error"]["detail"].is_null());

        // Extra headers render between the fixed set and Connection.
        let resp = Response::json(200, &serde_json::json!({"ok": true}))
            .with_header("Deprecation", "true".into())
            .with_header("Link", "</v1/asn/1>; rel=\"successor-version\"".into());
        assert_eq!(resp.header("deprecation"), Some("true"));
        assert_eq!(resp.header("X-Missing"), None);
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nDeprecation: true\r\n"), "{text}");
        assert!(text.contains("\r\nLink: </v1/asn/1>; rel=\"successor-version\"\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"ok\""), "{text}");
    }

    #[test]
    fn try_parse_handles_partial_and_pipelined_input() {
        // A prefix of a request parses to None until the terminator lands.
        assert!(matches!(try_parse(b"GET /healthz HT"), Ok(None)));
        assert!(matches!(try_parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n"), Ok(None)));
        // A complete message parses and reports exactly its byte length.
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = try_parse(raw).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(used, raw.len());
        // Pipelined input: the second message's bytes are not consumed.
        let mut pipelined = raw.to_vec();
        pipelined.extend_from_slice(b"GET /metrics HTTP/1.1\r\n\r\n");
        let (req, used) = try_parse(&pipelined).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(used, raw.len());
        let (next, _) = try_parse(&pipelined[used..]).unwrap().unwrap();
        assert_eq!(next.path, "/metrics");
    }

    #[test]
    fn try_parse_waits_for_body_and_mirrors_read_request_errors() {
        // Body bytes outstanding: incomplete, not an error.
        let partial = b"POST /admin/delta HTTP/1.1\r\nContent-Length: 5\r\n\r\nhi";
        assert!(matches!(try_parse(partial), Ok(None)));
        let full = b"POST /admin/delta HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let (req, used) = try_parse(full).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(used, full.len());
        // Error taxonomy matches read_request byte-for-byte causes.
        assert!(matches!(try_parse(b"NOT-HTTP\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::NotImplemented(_))
        ));
        let oversized = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(try_parse(oversized.as_bytes()), Err(HttpError::TooLarge(_))));
        // An unterminated request line cannot grow without bound.
        let runaway = vec![b'a'; MAX_LINE + 2];
        assert!(matches!(try_parse(&runaway), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn if_none_match_is_captured() {
        let req = parse("GET /v1/asn/AS1 HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n").unwrap();
        assert_eq!(req.if_none_match.as_deref(), Some("\"abc\""));
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.if_none_match.is_none());
    }

    #[test]
    fn head_render_keeps_length_and_drops_body() {
        let resp = Response::json(200, &serde_json::json!({"ok": true}));
        let full = resp.render(true, false);
        let head = resp.render(true, true);
        let full = String::from_utf8(full).unwrap();
        let head = String::from_utf8(head).unwrap();
        assert!(full.ends_with("{\"ok\":true}"));
        assert!(head.ends_with("Connection: keep-alive\r\n\r\n"), "{head}");
        // Identical headers: HEAD advertises the entity length it omits.
        assert_eq!(full.strip_suffix("{\"ok\":true}").unwrap(), head);
        assert!(head.contains("Content-Length: 11\r\n"));
        assert_eq!(reason(304), "Not Modified");
    }

    #[test]
    fn segments_split_path() {
        let req = parse("GET /asn/AS2119/ HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["asn", "AS2119"]);
    }

    #[test]
    fn encoded_slash_stays_inside_its_segment() {
        // Regression: the path used to be decoded before splitting, so
        // `%2F` forged a route separator and `/asn%2FAS1` dispatched as
        // the two-segment route `/asn/AS1`.
        let req = parse("GET /asn%2FAS1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["asn/AS1"], "one segment, slash literal");
        // Ordinary escapes inside a segment still decode after the split.
        let req = parse("GET /country/N%4F HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["country", "NO"]);
        // An encoded separator mixed with real ones splits only on the
        // real ones.
        let req = parse("GET /a/b%2Fc/d HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["a", "b/c", "d"]);
    }
}
