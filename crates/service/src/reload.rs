//! Zero-downtime snapshot reload: the atomically-swappable index slot and
//! the reloader that refreshes it from a snapshot file.
//!
//! The server never serves from a `&ServiceIndex` directly — every worker
//! goes through an [`IndexSlot`], which hands out `Arc<ServiceIndex>`
//! clones. A reload builds the *entire* new index off to the side and then
//! swaps the `Arc` in one short critical section, so:
//!
//! * in-flight requests keep the `Arc` they already cloned and finish on
//!   the old generation — no request ever observes a half-built index;
//! * a corrupt, truncated, version-mismatched or checksum-failing snapshot
//!   is rejected *before* the swap — the old index keeps serving
//!   (rollback by construction, not by restore);
//! * `/metrics` exposes the generation counter, reload counts and the
//!   loaded snapshot's build metadata, so operators can tell exactly what
//!   is being served.
//!
//! Reloads are triggered by `POST /admin/reload` (handled by a worker
//! thread) or by SIGHUP (observed by the `soi serve` loop via
//! [`crate::server::reload_requested`]); both paths funnel into
//! [`Reloader::reload`], which serializes concurrent attempts behind a
//! mutex.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use serde::Serialize;
use soi_core::{Snapshot, SnapshotBuildInfo, SnapshotError, SnapshotPayload};

use crate::index::{IndexSizes, ServiceIndex};
use crate::metrics::{IndexProvenance, Metrics, ServiceStatus};

/// The swappable handle the whole server reads its index through.
///
/// `load` is a read-lock plus an `Arc` clone — no data is copied, and the
/// lock is held only for the clone, so readers never contend with each
/// other and a swap stalls them only for the duration of a pointer store.
///
/// Next to the index the slot can *track* the exact payload (dataset +
/// table) the index was built from, keyed by its canonical checksum —
/// the state the delta write path (`POST /admin/delta`) validates and
/// applies against. A slot without a tracked payload still serves reads
/// and reloads; it just refuses deltas.
pub struct IndexSlot {
    current: RwLock<Arc<ServiceIndex>>,
    generation: AtomicU64,
    build_info: RwLock<Option<SnapshotBuildInfo>>,
    payload: RwLock<Option<(Arc<SnapshotPayload>, u64)>>,
    provenance: RwLock<Option<IndexProvenance>>,
    /// Serializes administrative swaps — snapshot reloads and delta
    /// applies — so two admin operations never interleave their
    /// read-compute-swap sequences.
    admin: Mutex<()>,
}

impl IndexSlot {
    /// A slot serving `index` at generation 1. `build_info` carries the
    /// snapshot provenance when the index came from one. No payload is
    /// tracked yet; see [`IndexSlot::attach_payload`].
    pub fn new(index: Arc<ServiceIndex>, build_info: Option<SnapshotBuildInfo>) -> IndexSlot {
        IndexSlot {
            current: RwLock::new(index),
            generation: AtomicU64::new(1),
            build_info: RwLock::new(build_info),
            payload: RwLock::new(None),
            provenance: RwLock::new(None),
            admin: Mutex::new(()),
        }
    }

    /// Records how the served index was built (snapshot load vs pipeline
    /// rebuild, thread count, stage timings). Set at boot by `soi serve`
    /// and refreshed on successful snapshot reloads.
    pub fn set_provenance(&self, provenance: IndexProvenance) {
        *self.provenance.write().expect("provenance lock") = Some(provenance);
    }

    /// How the served index was built, if recorded.
    pub fn provenance(&self) -> Option<IndexProvenance> {
        self.provenance.read().expect("provenance lock").clone()
    }

    /// The currently served index. Requests clone the `Arc` once and use
    /// it for their whole lifetime, so a concurrent swap never changes an
    /// answer mid-request.
    pub fn load(&self) -> Arc<ServiceIndex> {
        Arc::clone(&self.current.read().expect("index slot lock"))
    }

    /// Atomically replaces the served index, bumping and returning the new
    /// generation. Drops any tracked payload (the new index's source is
    /// unknown); use [`IndexSlot::swap_full`] to keep the delta write
    /// path armed.
    pub fn swap(&self, index: Arc<ServiceIndex>, build_info: Option<SnapshotBuildInfo>) -> u64 {
        self.swap_full(index, build_info, None)
    }

    /// Atomically replaces the served index *and* the tracked payload it
    /// was built from, bumping and returning the new generation.
    pub fn swap_full(
        &self,
        index: Arc<ServiceIndex>,
        build_info: Option<SnapshotBuildInfo>,
        payload: Option<(Arc<SnapshotPayload>, u64)>,
    ) -> u64 {
        *self.payload.write().expect("payload lock") = payload;
        *self.build_info.write().expect("build info lock") = build_info;
        *self.current.write().expect("index slot lock") = index;
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Records the payload the *current* index was built from (and its
    /// canonical checksum) without bumping the generation — used at boot,
    /// where the index and payload are installed together.
    pub fn attach_payload(&self, payload: Arc<SnapshotPayload>, checksum: u64) {
        *self.payload.write().expect("payload lock") = Some((payload, checksum));
    }

    /// The tracked payload and its checksum, if the served index came
    /// from one.
    pub fn payload(&self) -> Option<(Arc<SnapshotPayload>, u64)> {
        self.payload.read().expect("payload lock").clone()
    }

    /// Takes the admin lock shared by every administrative swap (reload,
    /// delta apply). Held across the whole read-compute-swap sequence so
    /// concurrent admin operations run one after the other against a
    /// stable base.
    pub fn admin_lock(&self) -> MutexGuard<'_, ()> {
        self.admin.lock().expect("admin lock")
    }

    /// Current reload generation (1 = boot index).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Provenance of the served snapshot, if any.
    pub fn build_info(&self) -> Option<SnapshotBuildInfo> {
        self.build_info.read().expect("build info lock").clone()
    }

    /// What `/metrics` reports about the served state right now.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            index: self.load().sizes(),
            generation: self.generation(),
            snapshot_build: self.build_info(),
            payload_checksum: self.payload().map(|(_, checksum)| checksum),
            build: self.provenance(),
        }
    }
}

/// Result of a successful reload, returned by `POST /admin/reload`.
#[derive(Clone, Debug, Serialize)]
pub struct ReloadOutcome {
    /// Generation now being served.
    pub generation: u64,
    /// Sizes of the freshly built indexes.
    pub index: IndexSizes,
    /// Build metadata of the loaded snapshot.
    pub snapshot_build: SnapshotBuildInfo,
}

struct ReloaderInner {
    path: PathBuf,
    slot: Arc<IndexSlot>,
}

/// Re-reads a snapshot file and swaps it into an [`IndexSlot`].
///
/// Cheap to clone; clones share the slot's admin lock, so two triggers
/// racing each other (or a reload racing a delta apply) perform two
/// orderly swaps, not a torn one.
#[derive(Clone)]
pub struct Reloader {
    inner: Arc<ReloaderInner>,
}

impl Reloader {
    /// A reloader that refreshes `slot` from the snapshot at `path`.
    pub fn new(path: impl Into<PathBuf>, slot: Arc<IndexSlot>) -> Reloader {
        Reloader { inner: Arc::new(ReloaderInner { path: path.into(), slot }) }
    }

    /// The snapshot file this reloader watches.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Re-reads the snapshot, validates version + checksum, builds the new
    /// index and swaps it in — together with the snapshot's payload and
    /// checksum, so the delta write path tracks the new base. On *any*
    /// failure the slot is untouched — the old generation keeps serving —
    /// and the failure is counted in `metrics`.
    pub fn reload(&self, metrics: &Metrics) -> Result<ReloadOutcome, SnapshotError> {
        let _guard = self.inner.slot.admin_lock();
        // Read + validate + build BEFORE touching the slot: everything
        // fallible happens while the old index still serves.
        match Snapshot::read_from_file_detect(&self.inner.path) {
            Ok((snapshot, format)) => {
                let build = snapshot.header.build.clone();
                let checksum = snapshot.header.checksum_fnv1a64;
                let payload = Arc::new(snapshot.payload.clone());
                let index = Arc::new(ServiceIndex::from_snapshot(snapshot));
                let sizes = index.sizes();
                let generation = self.inner.slot.swap_full(
                    index,
                    Some(build.clone()),
                    Some((payload, checksum)),
                );
                self.inner.slot.set_provenance(IndexProvenance {
                    source: "snapshot".into(),
                    format: Some(format.as_str().to_owned()),
                    threads: 0,
                    timings: None,
                });
                metrics.record_reload_ok();
                Ok(ReloadOutcome { generation, index: sizes, snapshot_build: build })
            }
            Err(e) => {
                metrics.record_reload_failed();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_bgp::PrefixToAs;
    use soi_core::{Dataset, OrgRecord};
    use soi_types::{Asn, OrgId, Rir};

    fn record(name: &str, asns: &[u32]) -> OrgRecord {
        OrgRecord {
            conglomerate_name: name.to_owned(),
            org_id: Some(OrgId(1)),
            org_name: name.to_owned(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: asns.iter().map(|&a| Asn(a)).collect(),
        }
    }

    fn snapshot(org: &str, asn: u32) -> Snapshot {
        let dataset = Dataset { organizations: vec![record(org, &[asn])] };
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(asn))]).unwrap();
        Snapshot::build(
            dataset,
            table,
            SnapshotBuildInfo { tool: "reload-test".into(), ..Default::default() },
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("soi-reload-test-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn reload_swaps_generation_and_rolls_back_on_corruption() {
        let path = tmp("swap");
        snapshot("Telenor", 2119).write_to_file(&path).unwrap();
        let boot = Snapshot::read_from_file(&path).unwrap();
        let info = boot.header.build.clone();
        let slot =
            Arc::new(IndexSlot::new(Arc::new(ServiceIndex::from_snapshot(boot)), Some(info)));
        let metrics = Metrics::new();
        let reloader = Reloader::new(&path, Arc::clone(&slot));

        assert_eq!(slot.generation(), 1);
        assert!(slot.load().lookup_asn(Asn(2119)).state_owned);
        assert!(!slot.load().lookup_asn(Asn(4000)).state_owned);
        assert!(slot.payload().is_none(), "boot without attach tracks no payload");

        // A good new snapshot swaps in as generation 2 and the slot now
        // tracks its payload (arming the delta write path).
        snapshot("PTCL", 4000).write_to_file(&path).unwrap();
        let outcome = reloader.reload(&metrics).expect("reload succeeds");
        assert_eq!(outcome.generation, 2);
        assert_eq!(slot.generation(), 2);
        assert!(slot.load().lookup_asn(Asn(4000)).state_owned);
        assert!(!slot.load().lookup_asn(Asn(2119)).state_owned);
        let (payload, checksum) = slot.payload().expect("reload tracks the payload");
        assert_eq!(payload.dataset.organizations[0].org_name, "PTCL");
        assert_eq!(checksum, snapshot("PTCL", 4000).header.checksum_fnv1a64);

        // A corrupt file is refused and generation 2 keeps serving.
        std::fs::write(&path, "this is not a snapshot").unwrap();
        assert!(reloader.reload(&metrics).is_err());
        assert_eq!(slot.generation(), 2);
        assert!(slot.load().lookup_asn(Asn(4000)).state_owned);

        // A tampered-but-parseable file fails the checksum, same rollback.
        let good = snapshot("PTCL", 4000).to_json().unwrap();
        std::fs::write(&path, good.replace("PTCL", "EVIL")).unwrap();
        assert!(matches!(reloader.reload(&metrics), Err(SnapshotError::ChecksumMismatch { .. })));
        assert_eq!(slot.generation(), 2);

        let status = slot.status();
        assert_eq!(status.generation, 2);
        assert_eq!(status.snapshot_build.unwrap().tool, "reload-test");
        assert_eq!(status.payload_checksum, Some(checksum));
        let snap = metrics.snapshot(0, &slot.status());
        assert_eq!(snap.reloads_total, 1);
        assert_eq!(snap.reload_failures, 2);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_accepts_v2_snapshots_and_reports_the_format() {
        use soi_core::SnapshotFormat;

        let path = tmp("v2");
        snapshot("Telenor", 2119).write_to_file(&path).unwrap();
        let boot = Snapshot::read_from_file(&path).unwrap();
        let slot = Arc::new(IndexSlot::new(Arc::new(ServiceIndex::from_snapshot(boot)), None));
        let metrics = Metrics::new();
        let reloader = Reloader::new(&path, Arc::clone(&slot));

        // Overwrite the watched file with the *binary* encoding of a new
        // snapshot: the reloader auto-detects the format, swaps, and the
        // provenance says which decoder ran.
        snapshot("PTCL", 4000).write_to_file_as(&path, SnapshotFormat::V2).unwrap();
        let outcome = reloader.reload(&metrics).expect("v2 reload succeeds");
        assert_eq!(outcome.generation, 2);
        assert!(slot.load().lookup_asn(Asn(4000)).state_owned);
        assert_eq!(slot.provenance().unwrap().format.as_deref(), Some("v2"));

        // The payload checksum tracked after a v2 load is the canonical
        // one, so the delta write path is armed identically to JSON.
        let (_, checksum) = slot.payload().expect("v2 reload tracks the payload");
        assert_eq!(checksum, snapshot("PTCL", 4000).header.checksum_fnv1a64);

        // Swapping back to JSON works too — mixed-format operation.
        snapshot("Telenor", 2119).write_to_file(&path).unwrap();
        reloader.reload(&metrics).expect("json reload succeeds");
        assert_eq!(slot.provenance().unwrap().format.as_deref(), Some("json"));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn readers_keep_their_generation_across_a_swap() {
        let path = tmp("readers");
        snapshot("Telenor", 2119).write_to_file(&path).unwrap();
        let boot = Snapshot::read_from_file(&path).unwrap();
        let slot = Arc::new(IndexSlot::new(Arc::new(ServiceIndex::from_snapshot(boot)), None));

        // A request captures the Arc before the swap...
        let held = slot.load();
        snapshot("PTCL", 4000).write_to_file(&path).unwrap();
        Reloader::new(&path, Arc::clone(&slot)).reload(&Metrics::new()).unwrap();
        // ...and still answers from the old index, while new loads see the
        // new one.
        assert!(held.lookup_asn(Asn(2119)).state_owned);
        assert!(slot.load().lookup_asn(Asn(4000)).state_owned);

        let _ = std::fs::remove_file(&path);
    }
}
