//! The serving side of the temporal store: materialized as-of views.
//!
//! [`HistoryService`] wraps an opened [`HistoryStore`] with the piece the
//! store itself cannot own (it sits below this crate in the dependency
//! graph): an LRU of fully built [`ServiceIndex`]es, keyed by
//! `(generation, year)`. The generation is bumped if the underlying
//! store is ever swapped, instantly invalidating every cached view
//! without touching them; the year is the as-of target. A cache hit
//! serves an `?at=` query at the same cost as the live index; a miss
//! pays one resolve (checkpoint load + segment replay) plus one index
//! build, both of which are counted in [`Metrics`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use soi_history::{HistoryError, HistoryStore, OrgTimeline, TemporalCache};

use crate::index::ServiceIndex;
use crate::metrics::Metrics;

/// Materialized views kept hot by default; tiny on purpose (each view is
/// a full index over the dataset).
pub const DEFAULT_HISTORY_CACHE_CAPACITY: usize = 8;

/// An opened history store plus the `(generation, year)`-keyed LRU of
/// materialized indexes the `?at=` handlers serve from.
pub struct HistoryService {
    store: HistoryStore,
    cache: TemporalCache<Arc<ServiceIndex>>,
    generation: AtomicU64,
}

impl HistoryService {
    /// Opens `dir` (validating the manifest and segment chain) with the
    /// default cache capacity.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<HistoryService, HistoryError> {
        HistoryService::with_capacity(dir, DEFAULT_HISTORY_CACHE_CAPACITY)
    }

    /// Opens `dir` with an explicit cache capacity.
    pub fn with_capacity(
        dir: impl AsRef<std::path::Path>,
        capacity: usize,
    ) -> Result<HistoryService, HistoryError> {
        Ok(HistoryService {
            store: HistoryStore::open(dir)?,
            cache: TemporalCache::new(capacity),
            generation: AtomicU64::new(1),
        })
    }

    /// The underlying store.
    pub fn store(&self) -> &HistoryStore {
        &self.store
    }

    /// Greatest year servable; `?at=` accepts `0..=years()`.
    pub fn years(&self) -> u32 {
        self.store.years()
    }

    /// Current cache generation (1 at open; bumps invalidate the cache).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Invalidates every cached view (e.g. after the directory was
    /// rebuilt in place): old keys never match again and age out.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// The index serving year `year`: cached, or materialized via the
    /// store's resolver and cached. Counts the request, the hit/miss,
    /// the segments replayed and the materialization wall clock.
    pub fn index_at(
        &self,
        year: u32,
        metrics: &Metrics,
    ) -> Result<Arc<ServiceIndex>, HistoryError> {
        metrics.record_as_of();
        let generation = self.generation();
        if let Some(index) = self.cache.get(generation, year) {
            metrics.record_as_of_cache_hit();
            return Ok(index);
        }
        let started = Instant::now();
        let (payload, stats) = self.store.resolve(year)?;
        let index = Arc::new(ServiceIndex::build(payload.dataset, &payload.table));
        metrics.record_materialization(
            stats.deltas_replayed,
            started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
        self.cache.insert(generation, year, Arc::clone(&index));
        Ok(index)
    }

    /// An organization's ownership/confirmation timeline across the
    /// stored years (one full chain replay, counted like a
    /// materialization).
    pub fn timeline(&self, org_id: u32, metrics: &Metrics) -> Result<OrgTimeline, HistoryError> {
        metrics.record_as_of();
        let started = Instant::now();
        let timeline = self.store.org_timeline(org_id)?;
        metrics.record_materialization(
            timeline.deltas_replayed,
            started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
        Ok(timeline)
    }
}

impl std::fmt::Debug for HistoryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryService")
            .field("years", &self.store.years())
            .field("checkpoint_spacing", &self.store.checkpoint_spacing())
            .field("cached", &self.cache.len())
            .field("generation", &self.generation())
            .finish()
    }
}
