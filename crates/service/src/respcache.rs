//! Generation-keyed LRU cache of fully-serialized `/v1` responses.
//!
//! The workload this serves is analysts and dashboards polling a
//! slowly-changing topology: the same handful of queries, over and over,
//! against an index that only changes on reload/delta. Caching the
//! *rendered* response (status + headers + JSON body bytes) turns those
//! repeats into a hash lookup and a memcpy — no index walk, no
//! re-serialization. Correctness rides on the same invalidation signal
//! the risk and history caches already use: the [`IndexSlot`] generation
//! counter (and the history store's own generation for `?at=` answers)
//! is part of the key, so a reload or applied delta makes every stale
//! entry unreachable and the LRU ages it out.
//!
//! Per-connection `Connection:` framing is *not* part of the entry — the
//! server renders that at write time — so one cached response serves
//! keep-alive and close clients alike.
//!
//! [`IndexSlot`]: crate::reload::IndexSlot

use std::collections::HashMap;
use std::sync::Mutex;

use crate::http::{Request, Response};
use crate::metrics::Metrics;

/// Default number of cached responses (`ServerConfig::respcache_capacity`).
pub const DEFAULT_RESPCACHE_CAPACITY: usize = 256;

/// Everything that must match for a cached response to be reusable.
///
/// `generation`/`history_generation` carry the invalidation signal;
/// `year` pins as-of answers to their resolved year; `head` separates
/// HEAD from GET so the hit counter stays honest about what was served;
/// `target` is the decoded path plus the query pairs in sorted order, so
/// `?limit=5&offset=10` and `?offset=10&limit=5` share an entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Live index generation ([`IndexSlot::generation`]).
    ///
    /// [`IndexSlot::generation`]: crate::reload::IndexSlot::generation
    pub generation: u64,
    /// History-store generation, 0 when the server has no history.
    pub history_generation: u64,
    /// Parsed `?at=` year, `None` for live answers.
    pub year: Option<u32>,
    /// True for HEAD (the cached entry is still the full response; the
    /// body is stripped at render time).
    pub head: bool,
    /// Canonical request target: decoded segments + sorted query pairs.
    pub target: String,
}

/// Builds the cache key for a request, or `None` when the request is not
/// cacheable: only GET/HEAD on `/v1` routes qualify (admin is a write
/// path, `/metrics` and `/healthz` must never be stale, legacy routes
/// are deprecated and not worth the memory).
pub fn cache_key(generation: u64, history_generation: u64, req: &Request) -> Option<CacheKey> {
    if req.method != "GET" && req.method != "HEAD" {
        return None;
    }
    let segments = req.segments();
    if segments.first() != Some(&"v1") {
        return None;
    }
    // Malformed `at` values take the error path; errors are never
    // cached, so skip the key entirely.
    let year = match req.query_param("at") {
        None => None,
        Some(raw) => Some(raw.parse::<u32>().ok()?),
    };
    let mut pairs = req.query.clone();
    pairs.sort();
    let mut target = String::new();
    for segment in &segments {
        target.push('/');
        target.push_str(segment);
    }
    for (k, v) in &pairs {
        target.push('\u{0}');
        target.push_str(k);
        target.push('=');
        target.push_str(v);
    }
    Some(CacheKey { generation, history_generation, year, head: req.method == "HEAD", target })
}

struct Slot {
    route: &'static str,
    response: Response,
    /// Tick of the last hit (or the insert), for LRU eviction.
    last_used: u64,
    /// Insertion sequence — the deterministic tie-break when two slots
    /// share a `last_used` tick.
    inserted: u64,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
    inserts: u64,
}

/// A bounded, deterministic LRU over rendered responses. Same recency
/// policy as the history crate's `TemporalCache`: every access bumps a
/// logical tick, eviction removes the slot with the smallest
/// `(last_used, inserted)` pair.
pub struct RespCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl RespCache {
    /// A cache holding at most `capacity` responses (min 1).
    pub fn new(capacity: usize) -> RespCache {
        RespCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, inserts: 0 }),
        }
    }

    /// Looks up a response, recording a hit or miss. A hit refreshes the
    /// entry's recency.
    pub fn get(&self, key: &CacheKey, metrics: &Metrics) -> Option<(&'static str, Response)> {
        let mut inner = self.inner.lock().expect("respcache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                metrics.record_respcache_hit();
                Some((slot.route, slot.response.clone()))
            }
            None => {
                metrics.record_respcache_miss();
                None
            }
        }
    }

    /// Inserts a response, evicting the least-recently-used entry when
    /// full. Stale-generation entries need no sweep: their keys can
    /// never be requested again, so the LRU retires them naturally.
    pub fn insert(
        &self,
        key: CacheKey,
        route: &'static str,
        response: Response,
        metrics: &Metrics,
    ) {
        let mut inner = self.inner.lock().expect("respcache lock");
        inner.tick += 1;
        inner.inserts += 1;
        let (tick, inserted) = (inner.tick, inner.inserts);
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| (slot.last_used, slot.inserted))
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                metrics.record_respcache_eviction();
            }
        }
        inner.map.insert(key, Slot { route, response, last_used: tick, inserted });
    }

    /// Entries currently held (test/debug aid).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("respcache lock").map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(target: &str) -> Request {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let (req, _) = crate::http::try_parse(raw.as_bytes()).unwrap().unwrap();
        req
    }

    fn response(tag: &str) -> Response {
        Response::json(200, &serde_json::json!({ "tag": tag }))
    }

    #[test]
    fn only_v1_get_and_head_are_cacheable() {
        assert!(cache_key(1, 0, &request("/v1/asn/AS1")).is_some());
        assert!(cache_key(1, 0, &request("/healthz")).is_none());
        assert!(cache_key(1, 0, &request("/metrics")).is_none());
        assert!(cache_key(1, 0, &request("/asn/AS1")).is_none(), "legacy routes skip the cache");
        let mut post = request("/v1/asn/AS1");
        post.method = "POST".into();
        assert!(cache_key(1, 0, &post).is_none());
        let mut head = request("/v1/asn/AS1");
        head.method = "HEAD".into();
        let head_key = cache_key(1, 0, &head).unwrap();
        assert!(head_key.head, "HEAD keys separately from GET");
        assert_ne!(head_key, cache_key(1, 0, &request("/v1/asn/AS1")).unwrap());
    }

    #[test]
    fn keys_canonicalize_query_order_and_pin_generations() {
        let a = cache_key(3, 7, &request("/v1/search?q=tel&limit=5")).unwrap();
        let b = cache_key(3, 7, &request("/v1/search?limit=5&q=tel")).unwrap();
        assert_eq!(a, b, "query order is canonicalized");
        assert_ne!(a, cache_key(4, 7, &request("/v1/search?q=tel&limit=5")).unwrap());
        assert_ne!(a, cache_key(3, 8, &request("/v1/search?q=tel&limit=5")).unwrap());
        let at = cache_key(3, 7, &request("/v1/asn/AS1?at=2")).unwrap();
        assert_eq!(at.year, Some(2));
        assert!(cache_key(3, 7, &request("/v1/asn/AS1?at=nope")).is_none(), "error path uncached");
    }

    #[test]
    fn lru_evicts_deterministically_and_counts() {
        let m = Metrics::new();
        let cache = RespCache::new(2);
        let k = |t: &str| cache_key(1, 0, &request(t)).unwrap();
        cache.insert(k("/v1/asn/AS1"), "v1_asn", response("a"), &m);
        cache.insert(k("/v1/asn/AS2"), "v1_asn", response("b"), &m);
        // Touch AS1 so AS2 is the LRU victim.
        assert!(cache.get(&k("/v1/asn/AS1"), &m).is_some());
        cache.insert(k("/v1/asn/AS3"), "v1_asn", response("c"), &m);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k("/v1/asn/AS2"), &m).is_none(), "LRU entry evicted");
        let (route, resp) = cache.get(&k("/v1/asn/AS1"), &m).unwrap();
        assert_eq!(route, "v1_asn");
        assert_eq!(resp.body, response("a").body);
        let snap = m.snapshot(0, &crate::metrics::ServiceStatus::default());
        assert_eq!(snap.respcache_evictions, 1);
        assert_eq!(snap.respcache_hits, 2);
        assert_eq!(snap.respcache_misses, 1);
    }

    #[test]
    fn generation_bump_makes_old_entries_unreachable() {
        let m = Metrics::new();
        let cache = RespCache::new(4);
        let old = cache_key(1, 0, &request("/v1/country")).unwrap();
        cache.insert(old.clone(), "v1_country", response("gen1"), &m);
        assert!(cache.get(&old, &m).is_some());
        // After a reload the server keys with the bumped generation:
        // the old entry can never be served again.
        let new = cache_key(2, 0, &request("/v1/country")).unwrap();
        assert!(cache.get(&new, &m).is_none());
    }
}
