//! Route dispatch: maps parsed requests onto [`ServiceIndex`] queries.
//!
//! ## HTTP API
//!
//! | route | answer |
//! |---|---|
//! | `GET /healthz` | liveness + dataset presence |
//! | `GET /metrics` | [`crate::metrics::MetricsSnapshot`] |
//! | `GET /asn/{asn}` | state-ownership verdict + full org record |
//! | `GET /ip/{a.b.c.d}` | longest-prefix-match verdict for an address |
//! | `GET /prefix/{a.b.c.d}/{len}` | covering-announcement verdict |
//! | `GET /country/{CC}` | per-country footprint/majority summary |
//! | `GET /search?q=needle[&limit=n]` | org-name substring search |
//! | `GET /dataset` | whole-dataset summary |
//!
//! Errors are uniform JSON: `{"error": "..."}` with 400/404/405 status.

use std::net::Ipv4Addr;

use serde::Serialize;
use soi_types::{Asn, CountryCode, Ipv4Prefix};

use crate::http::{Request, Response};
use crate::index::ServiceIndex;
use crate::metrics::Metrics;

/// Hard cap on `/search` results per request.
const MAX_SEARCH_LIMIT: usize = 100;
/// Default `/search` result count.
const DEFAULT_SEARCH_LIMIT: usize = 20;

#[derive(Serialize)]
struct Health<'a> {
    status: &'a str,
    organizations: usize,
}

#[derive(Serialize)]
struct SearchAnswer {
    query: String,
    hits: Vec<crate::index::SearchHit>,
}

/// Dispatches one request. Returns the route label (for per-route
/// metrics) and the response.
pub fn respond(
    index: &ServiceIndex,
    metrics: &Metrics,
    queue_depth: usize,
    req: &Request,
) -> (&'static str, Response) {
    if req.method != "GET" {
        return ("other", Response::error(405, &format!("method {} not allowed", req.method)));
    }
    let segments = req.segments();
    match *segments.as_slice() {
        ["healthz"] => (
            "healthz",
            Response::json(
                200,
                &Health { status: "ok", organizations: index.sizes().organizations },
            ),
        ),
        ["metrics"] => ("metrics", Response::json(200, &metrics.snapshot(queue_depth))),
        ["asn", raw] => ("asn", asn_route(index, raw)),
        ["ip", raw] => ("ip", ip_route(index, raw)),
        ["prefix", addr, len] => ("prefix", prefix_route(index, addr, len)),
        ["country", raw] => ("country", country_route(index, raw)),
        ["search"] => ("search", search_route(index, req)),
        ["dataset"] => ("dataset", Response::json(200, &index.summary())),
        _ => ("other", Response::error(404, &format!("no such route: {}", req.path))),
    }
}

fn asn_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Asn>() {
        Ok(asn) => Response::json(200, &index.lookup_asn(asn)),
        Err(_) => Response::error(400, &format!("invalid ASN: {raw:?}")),
    }
}

fn ip_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Ipv4Addr>() {
        Ok(ip) => Response::json(200, &index.lookup_ip(ip)),
        Err(_) => Response::error(400, &format!("invalid IPv4 address: {raw:?}")),
    }
}

fn prefix_route(index: &ServiceIndex, addr: &str, len: &str) -> Response {
    let cidr = format!("{addr}/{len}");
    match cidr.parse::<Ipv4Prefix>() {
        Ok(prefix) => Response::json(200, &index.lookup_prefix(prefix)),
        Err(_) => Response::error(400, &format!("invalid prefix: {cidr:?}")),
    }
}

fn country_route(index: &ServiceIndex, raw: &str) -> Response {
    let upper = raw.to_ascii_uppercase();
    match upper.parse::<CountryCode>() {
        Ok(code) => match index.country(code) {
            Some(summary) => Response::json(200, &summary),
            None => Response::error(404, &format!("unknown country: {upper:?}")),
        },
        Err(_) => Response::error(400, &format!("invalid country code: {raw:?}")),
    }
}

fn search_route(index: &ServiceIndex, req: &Request) -> Response {
    let Some(needle) = req.query_param("q").filter(|q| !q.is_empty()) else {
        return Response::error(400, "search needs a non-empty ?q= parameter");
    };
    let limit = req
        .query_param("limit")
        .and_then(|l| l.parse::<usize>().ok())
        .unwrap_or(DEFAULT_SEARCH_LIMIT)
        .clamp(1, MAX_SEARCH_LIMIT);
    let hits = index.search(needle, limit);
    Response::json(200, &SearchAnswer { query: needle.to_owned(), hits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_bgp::PrefixToAs;
    use soi_core::{Dataset, OrgRecord};
    use soi_types::{OrgId, Rir};
    use std::io::BufReader;

    fn index() -> ServiceIndex {
        let rec = OrgRecord {
            conglomerate_name: "Telenor".into(),
            org_id: Some(OrgId(1)),
            org_name: "Telenor".into(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: vec![Asn(2119)],
        };
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        ServiceIndex::build(Dataset { organizations: vec![rec] }, &table)
    }

    fn get(index: &ServiceIndex, metrics: &Metrics, target: &str) -> (&'static str, Response) {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        let mut reader = BufReader::new(raw.as_bytes());
        let req = crate::http::read_request(&mut reader).unwrap();
        respond(index, metrics, 0, &req)
    }

    fn body(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn routes_dispatch_and_label() {
        let ix = index();
        let m = Metrics::new(ix.sizes());
        for (target, route, status) in [
            ("/healthz", "healthz", 200),
            ("/metrics", "metrics", 200),
            ("/asn/AS2119", "asn", 200),
            ("/asn/2119", "asn", 200),
            ("/asn/banana", "asn", 400),
            ("/ip/10.1.2.3", "ip", 200),
            ("/ip/999.1.1.1", "ip", 400),
            ("/prefix/10.1.0.0/16", "prefix", 200),
            ("/prefix/10.1.0.0/99", "prefix", 400),
            ("/country/no", "country", 200),
            ("/country/xx", "country", 404),
            ("/country/nope", "country", 400),
            ("/search?q=telenor", "search", 200),
            ("/search", "search", 400),
            ("/dataset", "dataset", 200),
            ("/nope", "other", 404),
        ] {
            let (label, resp) = get(&ix, &m, target);
            assert_eq!(label, route, "{target}");
            assert_eq!(resp.status, status, "{target}: {}", body(&resp));
        }
    }

    #[test]
    fn asn_answer_carries_the_record() {
        let ix = index();
        let m = Metrics::new(ix.sizes());
        let (_, resp) = get(&ix, &m, "/asn/AS2119");
        let text = body(&resp);
        assert!(text.contains("\"state_owned\":true"), "{text}");
        assert!(text.contains("Telenor"), "{text}");
        let (_, resp) = get(&ix, &m, "/asn/AS1");
        assert!(body(&resp).contains("\"state_owned\":false"));
    }

    #[test]
    fn non_get_methods_rejected() {
        let ix = index();
        let m = Metrics::new(ix.sizes());
        let raw = "POST /asn/AS2119 HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let req = crate::http::read_request(&mut reader).unwrap();
        let (label, resp) = respond(&ix, &m, 0, &req);
        assert_eq!(label, "other");
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn search_limit_is_clamped() {
        let ix = index();
        let m = Metrics::new(ix.sizes());
        let (_, resp) = get(&ix, &m, "/search?q=telenor&limit=0");
        assert_eq!(resp.status, 200, "limit 0 clamps to 1 rather than erroring");
        let (_, resp) = get(&ix, &m, "/search?q=e&limit=junk");
        assert_eq!(resp.status, 200);
    }
}
