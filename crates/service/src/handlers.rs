//! Route dispatch: maps parsed requests onto [`ServiceIndex`] queries.
//!
//! ## HTTP API (versioned, `/v1`)
//!
//! | route | answer |
//! |---|---|
//! | `GET /v1/asn/{asn}` | state-ownership verdict + full org record |
//! | `GET /v1/ip/{a.b.c.d}` | longest-prefix-match verdict for an address |
//! | `GET /v1/prefix/{a.b.c.d}/{len}` | covering-announcement verdict |
//! | `GET /v1/country` | paginated country roll-ups, country-code order |
//! | `GET /v1/country/{CC}` | per-country footprint/majority summary |
//! | `GET /v1/search?q=needle[&limit=n&offset=n]` | paginated org-name substring search, dataset order |
//! | `GET /v1/dataset` | whole-dataset summary |
//! | `GET /v1/history` | history-store summary (years, checkpoints, spacing) |
//! | `GET /v1/history/org/{id}` | ownership/confirmation timeline across stored years |
//! | `GET /v1/risk/country/{CC}` | transit-exposure scores for one country |
//! | `GET /v1/risk/chokepoints/{CC}` | greedy AS cut-set over the country's routes |
//! | `GET /v1/risk/classes` | paginated EC/STP/LTP/CAHP rows + ownership cross-tab |
//! | `GET /v1/risk/diff?from=&to=` | per-country exposure + class deltas between two stored years |
//!
//! ## Conditional requests (the cheap-revalidation flow)
//!
//! Every 200 from a `/v1` data, history, or risk route carries a
//! **strong `ETag`** derived from the serving generation plus the
//! content checksum that pins the answer (live: the tracked payload
//! checksum; as-of: the year's manifest checksum; risk: the report
//! checksum). Clients poll with `If-None-Match: <etag>` and get
//! `304 Not Modified` (empty body, same `ETag`) until a reload or delta
//! bumps the generation — the revalidation costs a header compare, not
//! an index walk. `HEAD` is accepted wherever `GET` is and answers with
//! identical headers (including `Content-Length` and `ETag`) and no
//! body. As-of answers (`?at=`, `/v1/risk/*?at=`) additionally carry
//! `X-Soi-Year: <year>` naming the resolved year.
//!
//! With a history store attached (`soi serve --history DIR`), the read
//! routes (`/v1/asn`, `/v1/ip`, `/v1/prefix`, `/v1/country`,
//! `/v1/search`, `/v1/dataset`) accept `?at=<year>` and answer from the
//! dataset as of that year — materialized by checkpoint load + delta replay and kept
//! in a `(generation, year)` LRU, so the answer body is byte-identical
//! to what a server over that year's dataset would produce. As-of
//! errors: malformed year ⇒ `400 invalid_at`, no store attached ⇒
//! `409 history_unavailable`, year past the stored range ⇒
//! `404 unknown_year`.
//!
//! The `/v1/risk` routes need a [`crate::risk::RiskService`] attached
//! (`409 risk_unavailable` otherwise) and answer from the checksummed
//! risk report for the live tracked payload — computed once per index
//! generation — or, with `?at=<year>`, for the year's payload resolved
//! through the history store (same `invalid_at` / `history_unavailable`
//! / `unknown_year` envelope as the read routes). Every answer carries
//! `report_checksum` so clients can correlate the three views of one
//! report.
//!
//! `/v1` errors are a uniform envelope with a stable machine-readable
//! code: `{"error": {"code": "...", "message": "...", "detail": ...}}`.
//! Paginated routes take `limit` (1..=100, default 20) and `offset`
//! (default 0), reject malformed values with `invalid_limit` /
//! `invalid_offset`, and answer with `total` so clients can page to the
//! end. Ordering is stable within a served generation: dataset
//! (publication) order for search hits, country-code order for the
//! country collection.
//!
//! ## Unversioned routes
//!
//! | route | answer |
//! |---|---|
//! | `GET /healthz` | liveness + dataset presence |
//! | `GET /metrics` | [`crate::metrics::MetricsSnapshot`] |
//! | `POST /admin/reload` | re-read the snapshot file and swap the index |
//! | `POST /admin/delta` | apply a `soi-delta` patch to the served payload |
//!
//! The pre-versioning data routes (`/asn`, `/ip`, `/prefix`, `/country/
//! {CC}`, `/search`, `/dataset`) keep answering exactly as before —
//! legacy error shape `{"error": "..."}` included — but are **deprecated
//! aliases**: every answer carries `Deprecation: true` plus a `Link: ...;
//! rel="successor-version"` header pointing at the `/v1` equivalent, and
//! their traffic is counted separately in `/metrics`
//! (`requests_legacy` vs `requests_v1`). `/healthz`, `/metrics` and the
//! admin endpoints are operational, not part of the data API, and stay
//! unversioned.
//!
//! `/admin/reload` answers `409` when the server is not serving from a
//! snapshot file, and `500` (old index kept) when the file is rejected.
//! `/admin/delta` answers `400` for a malformed or checksum-failing
//! document, `409` when the delta names a different base payload than
//! the one being served (stale generation — e.g. after a reload) or
//! conflicts with it, and `500` for internal failures; in every failure
//! case the old index keeps serving.

use std::net::Ipv4Addr;
use std::sync::Arc;

use serde::Serialize;
use soi_history::HistoryError;
use soi_types::{Asn, CountryCode, Ipv4Prefix};

use crate::http::{Request, Response};
use crate::index::ServiceIndex;
use crate::respcache;
use crate::risk::RiskServiceError;
use crate::server::ServerState;

/// Hard cap on `/search` results per request.
const MAX_SEARCH_LIMIT: usize = 100;
/// Default `/search` result count.
const DEFAULT_SEARCH_LIMIT: usize = 20;

#[derive(Serialize)]
struct Health<'a> {
    status: &'a str,
    organizations: usize,
}

#[derive(Serialize)]
struct SearchAnswer {
    query: String,
    hits: Vec<crate::index::SearchHit>,
}

#[derive(Serialize)]
struct PagedSearchAnswer {
    query: String,
    total: usize,
    limit: usize,
    offset: usize,
    hits: Vec<crate::index::SearchHit>,
}

#[derive(Serialize)]
struct CountriesAnswer {
    total: usize,
    limit: usize,
    offset: usize,
    countries: Vec<crate::index::CountrySummary>,
}

/// Dispatches one request. Returns the route label (for per-route
/// metrics) and the response.
///
/// The served index is loaded from the slot exactly once per request, so
/// a concurrent reload never changes an answer mid-request.
pub fn respond(state: &ServerState, queue_depth: usize, req: &Request) -> (&'static str, Response) {
    let segments = req.segments();
    if let ["admin", "reload"] = *segments.as_slice() {
        return ("admin", admin_reload(state, req));
    }
    if let ["admin", "delta"] = *segments.as_slice() {
        return ("admin", admin_delta(state, req));
    }
    // HEAD is served exactly like GET — the server strips the body at
    // write time while keeping the entity's headers — so every read
    // route gets HEAD support for free.
    if req.method != "GET" && req.method != "HEAD" {
        if segments.first() == Some(&"v1") {
            return (
                "v1_other",
                Response::api_error(
                    405,
                    "method_not_allowed",
                    &format!("method {} not allowed", req.method),
                    Some(req.method.as_str()),
                ),
            );
        }
        return ("other", Response::error(405, &format!("method {} not allowed", req.method)));
    }
    let index = state.slot.load();
    let index = &*index;
    match *segments.as_slice() {
        ["healthz"] => (
            "healthz",
            Response::json(
                200,
                &Health { status: "ok", organizations: index.sizes().organizations },
            ),
        ),
        ["metrics"] => {
            ("metrics", Response::json(200, &state.metrics.snapshot(queue_depth, &state.status())))
        }
        // Versioned data API: envelope errors, pagination, no deprecation.
        // The read routes answer for the live index, or — with `?at=` and
        // a history store attached — for the year's materialized view.
        ["v1", "asn", raw] => ("v1_asn", with_as_of(state, req, index, |ix| v1_asn_route(ix, raw))),
        ["v1", "ip", raw] => ("v1_ip", with_as_of(state, req, index, |ix| v1_ip_route(ix, raw))),
        ["v1", "prefix", addr, len] => {
            ("v1_prefix", with_as_of(state, req, index, |ix| v1_prefix_route(ix, addr, len)))
        }
        ["v1", "country"] => {
            ("v1_country", with_as_of(state, req, index, |ix| v1_countries_route(ix, req)))
        }
        ["v1", "country", raw] => {
            ("v1_country", with_as_of(state, req, index, |ix| v1_country_route(ix, raw)))
        }
        ["v1", "search"] => {
            ("v1_search", with_as_of(state, req, index, |ix| v1_search_route(ix, req)))
        }
        ["v1", "dataset"] => {
            ("v1_dataset", with_as_of(state, req, index, |ix| Response::json(200, &ix.summary())))
        }
        ["v1", "history"] => ("v1_history", v1_history_summary(state, req)),
        ["v1", "history", "org", raw] => ("v1_history", v1_history_org_route(state, req, raw)),
        ["v1", "risk", "country", raw] => ("v1_risk", v1_risk_country_route(state, req, raw)),
        ["v1", "risk", "chokepoints", raw] => {
            ("v1_risk", v1_risk_chokepoints_route(state, req, raw))
        }
        ["v1", "risk", "classes"] => ("v1_risk", v1_risk_classes_route(state, req)),
        ["v1", "risk", "diff"] => ("v1_risk", v1_risk_diff_route(state, req)),
        ["v1", ..] => (
            "v1_other",
            Response::api_error(
                404,
                "not_found",
                &format!("no such /v1 route: {}", req.path),
                Some(req.path.as_str()),
            ),
        ),
        // Legacy aliases: identical answers, flagged as deprecated.
        ["asn", raw] => ("asn", deprecated(asn_route(index, raw), &req.path)),
        ["ip", raw] => ("ip", deprecated(ip_route(index, raw), &req.path)),
        ["prefix", addr, len] => ("prefix", deprecated(prefix_route(index, addr, len), &req.path)),
        ["country", raw] => ("country", deprecated(country_route(index, raw), &req.path)),
        ["search"] => ("search", deprecated(search_route(index, req), &req.path)),
        ["dataset"] => ("dataset", deprecated(Response::json(200, &index.summary()), &req.path)),
        _ => ("other", Response::error(404, &format!("no such route: {}", req.path))),
    }
}

/// [`respond`] behind the response cache and the conditional-request
/// layer. Both serving modes (threaded and event-driven) dispatch
/// through here, so a cache hit, a cache miss, and a cache-less server
/// all produce byte-identical responses for the same request.
///
/// The cache stores the *full* 200 entity (with its ETag); revalidation
/// against `If-None-Match` happens on the way out, so a 304 is served
/// from cache without ever touching a handler.
pub fn respond_cached(
    state: &ServerState,
    queue_depth: usize,
    req: &Request,
) -> (&'static str, Response) {
    let key = state.respcache.as_ref().and_then(|_| {
        respcache::cache_key(
            state.slot.generation(),
            state.history.as_ref().map(|h| h.generation()).unwrap_or(0),
            req,
        )
    });
    if let (Some(cache), Some(key)) = (&state.respcache, &key) {
        if let Some((route, resp)) = cache.get(key, &state.metrics) {
            return (route, revalidate(req, resp));
        }
    }
    let (route, resp) = respond(state, queue_depth, req);
    if let (Some(cache), Some(key)) = (&state.respcache, key) {
        // Only 200s are cached: errors are cheap to recompute and must
        // never outlive the condition that caused them.
        if resp.status == 200 {
            cache.insert(key, route, resp.clone(), &state.metrics);
        }
    }
    (route, revalidate(req, resp))
}

/// Turns a 200 into a `304 Not Modified` when the request's
/// `If-None-Match` matches the response's strong ETag. The 304 carries
/// only the validator headers (`ETag`, `X-Soi-Year`) and an empty body.
fn revalidate(req: &Request, resp: Response) -> Response {
    if resp.status != 200 {
        return resp;
    }
    let (Some(client), Some(etag)) = (&req.if_none_match, resp.header("ETag")) else {
        return resp;
    };
    if !etag_match(client, etag) {
        return resp;
    }
    let headers = resp
        .headers
        .iter()
        .filter(|(n, _)| n.eq_ignore_ascii_case("ETag") || n.eq_ignore_ascii_case("X-Soi-Year"))
        .cloned()
        .collect();
    Response { status: 304, body: Vec::new(), headers }
}

/// RFC 9110 §13.1.2 `If-None-Match` evaluation: a comma-separated list
/// of entity tags, `*` matches anything, and comparison is *weak* (a
/// client echoing `W/"x"` for our strong `"x"` still revalidates).
fn etag_match(client: &str, etag: &str) -> bool {
    client.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate == etag || candidate.strip_prefix("W/") == Some(etag)
    })
}

/// The one shared `?at=` validator: every year-scoped route funnels
/// through here so the rules are uniform across `/v1` — `at` must parse
/// as a non-negative year index and must not be combined with the
/// `from`/`to` range parameters (a point-in-time query and a range query
/// contradict each other).
fn parse_at(req: &Request) -> Result<Option<u32>, Response> {
    let raw = req.query_param("at");
    if raw.is_some() && (req.query_param("from").is_some() || req.query_param("to").is_some()) {
        return Err(Response::api_error(
            400,
            "invalid_at",
            "at cannot be combined with the from/to range parameters",
            raw,
        ));
    }
    match raw {
        None => Ok(None),
        Some(raw) => match raw.parse::<u32>() {
            Ok(year) => Ok(Some(year)),
            Err(_) => Err(Response::api_error(
                400,
                "invalid_at",
                "at must be a non-negative year index",
                Some(raw),
            )),
        },
    }
}

/// Parses a required year-range parameter (`from`/`to`) with the same
/// strictness and error code as [`parse_at`].
fn parse_year_param(req: &Request, key: &'static str) -> Result<u32, Response> {
    match req.query_param(key) {
        None => Err(Response::api_error(
            400,
            "invalid_at",
            "diff requires both from and to year parameters",
            Some(key),
        )),
        Some(raw) => raw.parse::<u32>().map_err(|_| {
            Response::api_error(
                400,
                "invalid_at",
                &format!("{key} must be a non-negative year index"),
                Some(raw),
            )
        }),
    }
}

/// Attaches a strong validator to a successful answer. Errors are never
/// tagged: they have no cacheable entity.
fn tagged(resp: Response, etag: String) -> Response {
    if resp.status == 200 {
        resp.with_header("ETag", etag)
    } else {
        resp
    }
}

/// Marks an answer as resolved-as-of `year`.
fn with_year_header(resp: Response, year: u32) -> Response {
    resp.with_header("X-Soi-Year", year.to_string())
}

/// Strong validator for answers derived from the live index: the slot
/// generation pins the swap history, the tracked payload checksum pins
/// the content (absent when the server tracks no payload — the
/// generation alone still changes on every swap).
fn live_etag(state: &ServerState) -> String {
    match state.slot.payload() {
        Some((_, checksum)) => format!("\"g{:x}-{checksum:016x}\"", state.slot.generation()),
        None => format!("\"g{:x}\"", state.slot.generation()),
    }
}

/// Strong validator for an as-of answer: the year's payload checksum
/// comes straight from the store manifest (O(1), no resolve), the
/// history generation pins invalidation.
fn as_of_etag(state: &ServerState, year: u32) -> Option<String> {
    let history = state.history.as_ref()?;
    let entry = history.store().manifest().entries.iter().find(|e| e.year == year)?;
    Some(format!("\"h{:x}-y{year}-{:016x}\"", history.generation(), entry.payload_checksum))
}

/// Strong validator for the store-wide history routes (summary,
/// timelines): an FNV-1a fold over every year's payload checksum, so any
/// rewrite of the stored range changes the tag.
fn history_etag(history: &crate::history::HistoryService) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for entry in &history.store().manifest().entries {
        for byte in entry.year.to_le_bytes().into_iter().chain(entry.payload_checksum.to_le_bytes())
        {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    format!("\"t{:x}-{hash:016x}\"", history.generation())
}

/// Runs a `/v1` read route against the live index, or — when the request
/// carries `?at=<year>` — against the year's materialized view. Tags
/// successes with the matching strong validator; as-of answers also name
/// their resolved year.
fn with_as_of(
    state: &ServerState,
    req: &Request,
    live: &ServiceIndex,
    route: impl FnOnce(&ServiceIndex) -> Response,
) -> Response {
    match parse_at(req) {
        Err(resp) => resp,
        Ok(None) => tagged(route(live), live_etag(state)),
        Ok(Some(year)) => match as_of_index(state, year) {
            Ok(index) => {
                let resp = with_year_header(route(&index), year);
                match as_of_etag(state, year) {
                    Some(etag) => tagged(resp, etag),
                    None => resp,
                }
            }
            Err(resp) => resp,
        },
    }
}

/// Resolves a validated `?at=` year to a served index via the history
/// service; every failure is an envelope error.
fn as_of_index(state: &ServerState, year: u32) -> Result<Arc<ServiceIndex>, Response> {
    let Some(history) = &state.history else {
        return Err(history_unavailable());
    };
    history.index_at(year, &state.metrics).map_err(|e| match e {
        HistoryError::UnknownYear { requested, max } => Response::api_error(
            404,
            "unknown_year",
            &format!("history holds years 0..={max}"),
            Some(&requested.to_string()),
        ),
        other => Response::api_error(
            500,
            "history_error",
            &format!("as-of materialization failed: {other}"),
            None,
        ),
    })
}

fn history_unavailable() -> Response {
    Response::api_error(
        409,
        "history_unavailable",
        "server was not started with a history store; as-of queries are unavailable",
        None,
    )
}

#[derive(Serialize)]
struct HistorySummary {
    years: u32,
    checkpoint_spacing: u32,
    checkpoints: Vec<u32>,
    seed: Option<u64>,
    cache_generation: u64,
}

/// `GET /v1/history`: what the attached store holds. The answer covers
/// every stored year, so a well-formed `?at=` is accepted and ignored —
/// but malformed or contradictory `at` params are rejected by the same
/// validator as every other year-scoped route.
fn v1_history_summary(state: &ServerState, req: &Request) -> Response {
    if let Err(resp) = parse_at(req) {
        return resp;
    }
    let Some(history) = &state.history else {
        return history_unavailable();
    };
    let store = history.store();
    tagged(
        Response::json(
            200,
            &HistorySummary {
                years: store.years(),
                checkpoint_spacing: store.checkpoint_spacing(),
                checkpoints: store.checkpoint_years(),
                seed: store.manifest().seed,
                cache_generation: history.generation(),
            },
        ),
        history_etag(history),
    )
}

/// `GET /v1/history/org/{id}`: an organization's ownership/confirmation
/// change-points across the stored years. Like the summary, the timeline
/// spans all years, so `?at=` is validated (shared rules) but a valid
/// year does not narrow the answer.
fn v1_history_org_route(state: &ServerState, req: &Request, raw: &str) -> Response {
    if let Err(resp) = parse_at(req) {
        return resp;
    }
    let Some(history) = &state.history else {
        return history_unavailable();
    };
    let Ok(org_id) = raw.parse::<u32>() else {
        return Response::api_error(
            400,
            "invalid_org",
            "organization id must be a decimal AS2Org cluster id",
            Some(raw),
        );
    };
    match history.timeline(org_id, &state.metrics) {
        Ok(timeline) if timeline.points.iter().any(|p| p.present) => {
            tagged(Response::json(200, &timeline), history_etag(history))
        }
        Ok(_) => Response::api_error(
            404,
            "unknown_org",
            "organization never appears in the stored years",
            Some(raw),
        ),
        Err(e) => Response::api_error(
            500,
            "history_error",
            &format!("timeline computation failed: {e}"),
            None,
        ),
    }
}

fn risk_unavailable(detail: Option<&str>) -> Response {
    Response::api_error(
        409,
        "risk_unavailable",
        "server was not started with a risk context; /v1/risk is unavailable",
        detail,
    )
}

/// Maps a risk-service failure onto the `/v1` error envelope.
fn map_risk_error(e: RiskServiceError) -> Response {
    match e {
        RiskServiceError::NoPayload => {
            risk_unavailable(Some("server tracks no payload to analyze"))
        }
        RiskServiceError::History(HistoryError::UnknownYear { requested, max }) => {
            Response::api_error(
                404,
                "unknown_year",
                &format!("history holds years 0..={max}"),
                Some(&requested.to_string()),
            )
        }
        RiskServiceError::History(other) => Response::api_error(
            500,
            "history_error",
            &format!("as-of resolution failed: {other}"),
            None,
        ),
        RiskServiceError::Compute(e) => {
            Response::api_error(500, "risk_error", &format!("risk computation failed: {e}"), None)
        }
    }
}

/// Resolves the risk report a `/v1/risk` request asks about: the live
/// payload's report, or — with `?at=<year>` (shared validator) — the
/// year's, resolved through the history store. Returns the report plus
/// the resolved year so callers can stamp `X-Soi-Year`. Every failure is
/// an envelope error.
fn risk_report_for(
    state: &ServerState,
    req: &Request,
) -> Result<(Arc<soi_risk::RiskReport>, Option<u32>), Response> {
    let Some(risk) = &state.risk else {
        return Err(risk_unavailable(None));
    };
    let year = parse_at(req)?;
    let result = match year {
        None => risk.live_report(&state.slot, &state.metrics),
        Some(year) => {
            let Some(history) = &state.history else {
                return Err(history_unavailable());
            };
            risk.report_at(year, history, &state.metrics)
        }
    };
    result.map(|report| (report, year)).map_err(map_risk_error)
}

/// Decorates a risk answer: `X-Soi-Year` whenever the request was
/// year-scoped, plus the report-checksum `ETag` on successes.
fn risk_tagged(resp: Response, report: &soi_risk::RiskReport, year: Option<u32>) -> Response {
    let resp = match year {
        Some(year) => with_year_header(resp, year),
        None => resp,
    };
    tagged(resp, format!("\"r{:016x}\"", report.checksum))
}

fn parse_risk_country(raw: &str) -> Result<CountryCode, Response> {
    raw.to_ascii_uppercase().parse::<CountryCode>().map_err(|_| {
        Response::api_error(
            400,
            "invalid_country",
            "country must be a two-letter ISO 3166-1 alpha-2 code",
            Some(raw),
        )
    })
}

#[derive(Serialize)]
struct RiskCountryAnswer<'a> {
    report_checksum: u64,
    country: &'a soi_risk::CountryExposure,
}

/// `GET /v1/risk/country/{cc}`: the country's transit-exposure scores.
fn v1_risk_country_route(state: &ServerState, req: &Request, raw: &str) -> Response {
    let code = match parse_risk_country(raw) {
        Ok(code) => code,
        Err(resp) => return resp,
    };
    let (report, year) = match risk_report_for(state, req) {
        Ok(resolved) => resolved,
        Err(resp) => return resp,
    };
    let resp = match report.country(code) {
        Some(exposure) => Response::json(
            200,
            &RiskCountryAnswer { report_checksum: report.checksum, country: exposure },
        ),
        None => Response::api_error(
            404,
            "unknown_country",
            "country code is valid but has no observed routes or announced space in the run",
            Some(code.as_str()),
        ),
    };
    risk_tagged(resp, &report, year)
}

#[derive(Serialize)]
struct RiskChokepointsAnswer<'a> {
    report_checksum: u64,
    chokepoints: &'a soi_risk::CountryChokepoints,
}

/// `GET /v1/risk/chokepoints/{cc}`: the country's greedy AS cut-set.
fn v1_risk_chokepoints_route(state: &ServerState, req: &Request, raw: &str) -> Response {
    let code = match parse_risk_country(raw) {
        Ok(code) => code,
        Err(resp) => return resp,
    };
    let (report, year) = match risk_report_for(state, req) {
        Ok(resolved) => resolved,
        Err(resp) => return resp,
    };
    let resp = match report.chokepoints_for(code) {
        Some(choke) => Response::json(
            200,
            &RiskChokepointsAnswer { report_checksum: report.checksum, chokepoints: choke },
        ),
        None => Response::api_error(
            404,
            "unknown_country",
            "country code is valid but has no observed routes or announced space in the run",
            Some(code.as_str()),
        ),
    };
    risk_tagged(resp, &report, year)
}

#[derive(Serialize)]
struct RiskClassesAnswer<'a> {
    report_checksum: u64,
    total: usize,
    limit: usize,
    offset: usize,
    summary: &'a [soi_risk::ClassSummary],
    rows: &'a [soi_risk::ClassRow],
}

/// `GET /v1/risk/classes`: the paginated AS-classification rows (ASN
/// order, stable within a generation) plus the full ownership cross-tab
/// on every page.
fn v1_risk_classes_route(state: &ServerState, req: &Request) -> Response {
    let (limit, offset) = match parse_page(req) {
        Ok(page) => page,
        Err(resp) => return resp,
    };
    let (report, year) = match risk_report_for(state, req) {
        Ok(resolved) => resolved,
        Err(resp) => return resp,
    };
    let rows = &report.classes.rows;
    let total = rows.len();
    let start = offset.min(total);
    let end = (start + limit).min(total);
    let resp = Response::json(
        200,
        &RiskClassesAnswer {
            report_checksum: report.checksum,
            total,
            limit,
            offset,
            summary: &report.classes.summary,
            rows: &rows[start..end],
        },
    );
    risk_tagged(resp, &report, year)
}

#[derive(Serialize)]
struct ClassDelta {
    class: &'static str,
    total_from: usize,
    total_to: usize,
    total_delta: i64,
    state_owned_from: usize,
    state_owned_to: usize,
    state_owned_delta: i64,
}

/// Per-country classification churn between the two years, attributed to
/// each AS's registration country.
#[derive(Clone, Default, Serialize)]
struct CountryClassChanges {
    /// ASes classified in `to` but absent from `from`.
    added: usize,
    /// ASes classified in `from` but gone by `to`.
    removed: usize,
    /// ASes whose class or state-ownership flag changed.
    reclassified: usize,
}

#[derive(Serialize)]
struct CountryDelta {
    country: String,
    present_from: bool,
    present_to: bool,
    transit_ases_from: usize,
    transit_ases_to: usize,
    transit_ases_delta: i64,
    total_score_from: f64,
    total_score_to: f64,
    total_score_delta: f64,
    foreign_share_from: f64,
    foreign_share_to: f64,
    foreign_share_delta: f64,
    state_share_from: f64,
    state_share_to: f64,
    state_share_delta: f64,
    foreign_state_share_from: f64,
    foreign_state_share_to: f64,
    foreign_state_share_delta: f64,
    class_changes: CountryClassChanges,
}

#[derive(Serialize)]
struct RiskDiffAnswer {
    from: u32,
    to: u32,
    from_checksum: u64,
    to_checksum: u64,
    total: usize,
    limit: usize,
    offset: usize,
    classes: Vec<ClassDelta>,
    countries: Vec<CountryDelta>,
}

/// `GET /v1/risk/diff?from=&to=`: per-country exposure and class deltas
/// between two stored years, both resolved through the history store.
/// The country rows (union of both years' scored countries plus any
/// country with classification churn, country-code order) paginate; the
/// class cross-tab delta rides on every page like `/v1/risk/classes`'s
/// summary does.
fn v1_risk_diff_route(state: &ServerState, req: &Request) -> Response {
    use std::collections::{BTreeMap, BTreeSet};

    // The shared validator rejects a contradictory ?at= alongside the
    // range params before anything is resolved.
    if let Err(resp) = parse_at(req) {
        return resp;
    }
    let (limit, offset) = match parse_page(req) {
        Ok(page) => page,
        Err(resp) => return resp,
    };
    let from = match parse_year_param(req, "from") {
        Ok(year) => year,
        Err(resp) => return resp,
    };
    let to = match parse_year_param(req, "to") {
        Ok(year) => year,
        Err(resp) => return resp,
    };
    let Some(risk) = &state.risk else {
        return risk_unavailable(None);
    };
    let Some(history) = &state.history else {
        return history_unavailable();
    };
    let from_report = match risk.report_at(from, history, &state.metrics) {
        Ok(report) => report,
        Err(e) => return map_risk_error(e),
    };
    let to_report = match risk.report_at(to, history, &state.metrics) {
        Ok(report) => report,
        Err(e) => return map_risk_error(e),
    };

    // Classification churn per registration country.
    let from_rows: BTreeMap<Asn, &soi_risk::ClassRow> =
        from_report.classes.rows.iter().map(|r| (r.asn, r)).collect();
    let to_rows: BTreeMap<Asn, &soi_risk::ClassRow> =
        to_report.classes.rows.iter().map(|r| (r.asn, r)).collect();
    let asns: BTreeSet<Asn> = from_rows.keys().chain(to_rows.keys()).copied().collect();
    let mut class_changes: BTreeMap<CountryCode, CountryClassChanges> = BTreeMap::new();
    for asn in asns {
        let (old, new) = (from_rows.get(&asn), to_rows.get(&asn));
        let Some(cc) =
            new.and_then(|r| r.registered_cc).or_else(|| old.and_then(|r| r.registered_cc))
        else {
            continue;
        };
        let entry = class_changes.entry(cc).or_default();
        match (old, new) {
            (None, Some(_)) => entry.added += 1,
            (Some(_), None) => entry.removed += 1,
            (Some(old), Some(new))
                if old.class != new.class || old.state_owned != new.state_owned =>
            {
                entry.reclassified += 1
            }
            _ => {}
        }
    }

    // The global cross-tab delta, every class in [`AsClass::ALL`] order.
    let classes: Vec<ClassDelta> = soi_risk::AsClass::ALL
        .iter()
        .map(|class| {
            let sum = |report: &soi_risk::RiskReport| {
                report
                    .classes
                    .summary
                    .iter()
                    .find(|s| s.class == *class)
                    .map(|s| (s.total, s.state_owned))
                    .unwrap_or((0, 0))
            };
            let (total_from, state_owned_from) = sum(&from_report);
            let (total_to, state_owned_to) = sum(&to_report);
            ClassDelta {
                class: class.as_str(),
                total_from,
                total_to,
                total_delta: total_to as i64 - total_from as i64,
                state_owned_from,
                state_owned_to,
                state_owned_delta: state_owned_to as i64 - state_owned_from as i64,
            }
        })
        .collect();

    // Union of scored countries across both years, country-code order.
    type ExposurePair<'a> =
        (Option<&'a soi_risk::CountryExposure>, Option<&'a soi_risk::CountryExposure>);
    let mut union: BTreeMap<CountryCode, ExposurePair> = BTreeMap::new();
    for exposure in &from_report.exposure {
        union.entry(exposure.country).or_default().0 = Some(exposure);
    }
    for exposure in &to_report.exposure {
        union.entry(exposure.country).or_default().1 = Some(exposure);
    }
    for cc in class_changes.keys() {
        union.entry(*cc).or_default();
    }

    let total = union.len();
    let countries: Vec<CountryDelta> = union
        .iter()
        .skip(offset)
        .take(limit)
        .map(|(cc, (old, new))| {
            let count = |e: Option<&soi_risk::CountryExposure>| e.map_or(0, |e| e.transit_ases);
            let score =
                |e: Option<&soi_risk::CountryExposure>,
                 get: fn(&soi_risk::CountryExposure) -> f64| e.map_or(0.0, get);
            let (taf, tat) = (count(*old), count(*new));
            let (tsf, tst) = (score(*old, |e| e.total_score), score(*new, |e| e.total_score));
            let (ff, ft) = (score(*old, |e| e.foreign_share), score(*new, |e| e.foreign_share));
            let (sf, st) = (score(*old, |e| e.state_share), score(*new, |e| e.state_share));
            let (fsf, fst) =
                (score(*old, |e| e.foreign_state_share), score(*new, |e| e.foreign_state_share));
            CountryDelta {
                country: cc.as_str().to_owned(),
                present_from: old.is_some(),
                present_to: new.is_some(),
                transit_ases_from: taf,
                transit_ases_to: tat,
                transit_ases_delta: tat as i64 - taf as i64,
                total_score_from: tsf,
                total_score_to: tst,
                total_score_delta: tst - tsf,
                foreign_share_from: ff,
                foreign_share_to: ft,
                foreign_share_delta: ft - ff,
                state_share_from: sf,
                state_share_to: st,
                state_share_delta: st - sf,
                foreign_state_share_from: fsf,
                foreign_state_share_to: fst,
                foreign_state_share_delta: fst - fsf,
                class_changes: class_changes.get(cc).cloned().unwrap_or_default(),
            }
        })
        .collect();

    let resp = Response::json(
        200,
        &RiskDiffAnswer {
            from,
            to,
            from_checksum: from_report.checksum,
            to_checksum: to_report.checksum,
            total,
            limit,
            offset,
            classes,
            countries,
        },
    );
    tagged(resp, format!("\"rd{:016x}-{:016x}\"", from_report.checksum, to_report.checksum))
}

/// Flags a legacy-route response as deprecated: RFC 9745 `Deprecation`
/// plus a `Link` header pointing at the `/v1` successor. The body and
/// status are untouched so pre-versioning clients keep working.
fn deprecated(resp: Response, path: &str) -> Response {
    resp.with_header("Deprecation", "true".to_owned())
        .with_header("Link", format!("</v1{path}>; rel=\"successor-version\""))
}

/// `POST /admin/reload`: re-read the snapshot file, validate it, and swap
/// the served index. Every failure leaves the current index serving.
fn admin_reload(state: &ServerState, req: &Request) -> Response {
    if req.method != "POST" {
        return Response::error(405, "reload requires POST");
    }
    let Some(reloader) = &state.reloader else {
        return Response::error(
            409,
            "server was not started from a snapshot file; nothing to reload",
        );
    };
    match reloader.reload(&state.metrics) {
        Ok(outcome) => Response::json(200, &outcome),
        Err(e) => Response::error(500, &format!("reload failed, keeping current index: {e}")),
    }
}

/// `POST /admin/delta`: parse the request body as a [`DatasetDelta`],
/// validate it against the served payload, and apply it. Every failure
/// leaves the current index serving; see the module docs for the status
/// mapping.
fn admin_delta(state: &ServerState, req: &Request) -> Response {
    if req.method != "POST" {
        return Response::error(405, "delta apply requires POST");
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "delta body is not valid UTF-8");
    };
    // from_json validates magic, format version and the document's own
    // checksum; base matching happens inside apply_delta under the admin
    // lock.
    let delta = match soi_delta::DatasetDelta::from_json(text) {
        Ok(delta) => delta,
        Err(e) => return Response::error(400, &format!("invalid delta document: {e}")),
    };
    match crate::delta::apply_delta(&state.slot, &delta, &state.metrics) {
        Ok(outcome) => Response::json(200, &outcome),
        Err(rejection) => Response::error(
            rejection.status,
            &format!("delta refused, keeping current index: {}", rejection.error),
        ),
    }
}

fn asn_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Asn>() {
        Ok(asn) => Response::json(200, &index.lookup_asn(asn)),
        Err(_) => Response::error(400, &format!("invalid ASN: {raw:?}")),
    }
}

fn ip_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Ipv4Addr>() {
        Ok(ip) => Response::json(200, &index.lookup_ip(ip)),
        Err(_) => Response::error(400, &format!("invalid IPv4 address: {raw:?}")),
    }
}

fn prefix_route(index: &ServiceIndex, addr: &str, len: &str) -> Response {
    let cidr = format!("{addr}/{len}");
    match cidr.parse::<Ipv4Prefix>() {
        Ok(prefix) => Response::json(200, &index.lookup_prefix(prefix)),
        Err(_) => Response::error(400, &format!("invalid prefix: {cidr:?}")),
    }
}

fn country_route(index: &ServiceIndex, raw: &str) -> Response {
    let upper = raw.to_ascii_uppercase();
    match upper.parse::<CountryCode>() {
        Ok(code) => match index.country(code) {
            Some(summary) => Response::json(200, &summary),
            None => Response::error(404, &format!("unknown country: {upper:?}")),
        },
        Err(_) => Response::error(400, &format!("invalid country code: {raw:?}")),
    }
}

fn search_route(index: &ServiceIndex, req: &Request) -> Response {
    let Some(needle) = req.query_param("q").filter(|q| !q.is_empty()) else {
        return Response::error(400, "search needs a non-empty ?q= parameter");
    };
    let limit = req
        .query_param("limit")
        .and_then(|l| l.parse::<usize>().ok())
        .unwrap_or(DEFAULT_SEARCH_LIMIT)
        .clamp(1, MAX_SEARCH_LIMIT);
    let hits = index.search(needle, limit);
    Response::json(200, &SearchAnswer { query: needle.to_owned(), hits })
}

/// Parses `limit`/`offset` for the paginated `/v1` routes. Unlike the
/// legacy `/search` clamp, malformed or out-of-range values are rejected
/// with an envelope error rather than silently defaulted.
fn parse_page(req: &Request) -> Result<(usize, usize), Response> {
    let limit = match req.query_param("limit") {
        None => DEFAULT_SEARCH_LIMIT,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if (1..=MAX_SEARCH_LIMIT).contains(&n) => n,
            _ => {
                return Err(Response::api_error(
                    400,
                    "invalid_limit",
                    &format!("limit must be an integer in 1..={MAX_SEARCH_LIMIT}"),
                    Some(raw),
                ));
            }
        },
    };
    let offset = match req.query_param("offset") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(Response::api_error(
                    400,
                    "invalid_offset",
                    "offset must be a non-negative integer",
                    Some(raw),
                ));
            }
        },
    };
    Ok((limit, offset))
}

fn v1_asn_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Asn>() {
        Ok(asn) => Response::json(200, &index.lookup_asn(asn)),
        Err(_) => Response::api_error(
            400,
            "invalid_asn",
            "ASN must be a decimal number, optionally prefixed with \"AS\"",
            Some(raw),
        ),
    }
}

fn v1_ip_route(index: &ServiceIndex, raw: &str) -> Response {
    match raw.parse::<Ipv4Addr>() {
        Ok(ip) => Response::json(200, &index.lookup_ip(ip)),
        Err(_) => {
            Response::api_error(400, "invalid_ip", "expected a dotted-quad IPv4 address", Some(raw))
        }
    }
}

fn v1_prefix_route(index: &ServiceIndex, addr: &str, len: &str) -> Response {
    let cidr = format!("{addr}/{len}");
    match cidr.parse::<Ipv4Prefix>() {
        Ok(prefix) => Response::json(200, &index.lookup_prefix(prefix)),
        Err(_) => Response::api_error(
            400,
            "invalid_prefix",
            "expected an IPv4 CIDR prefix, e.g. /v1/prefix/10.0.0.0/8",
            Some(&cidr),
        ),
    }
}

fn v1_country_route(index: &ServiceIndex, raw: &str) -> Response {
    let upper = raw.to_ascii_uppercase();
    match upper.parse::<CountryCode>() {
        Ok(code) => match index.country(code) {
            Some(summary) => Response::json(200, &summary),
            None => Response::api_error(
                404,
                "unknown_country",
                "country code is valid but not present in the dataset registry",
                Some(&upper),
            ),
        },
        Err(_) => Response::api_error(
            400,
            "invalid_country",
            "country must be a two-letter ISO 3166-1 alpha-2 code",
            Some(raw),
        ),
    }
}

/// `GET /v1/country`: the paginated country collection, ordered by
/// country code so pages are stable within a served generation.
fn v1_countries_route(index: &ServiceIndex, req: &Request) -> Response {
    let (limit, offset) = match parse_page(req) {
        Ok(page) => page,
        Err(resp) => return resp,
    };
    let (total, countries) = index.countries_page(limit, offset);
    Response::json(200, &CountriesAnswer { total, limit, offset, countries })
}

/// `GET /v1/search`: paginated substring search; hits come back in
/// dataset (publication) order so pages are stable within a generation.
fn v1_search_route(index: &ServiceIndex, req: &Request) -> Response {
    let Some(needle) = req.query_param("q").filter(|q| !q.is_empty()) else {
        return Response::api_error(
            400,
            "missing_query",
            "search needs a non-empty ?q= parameter",
            None,
        );
    };
    let (limit, offset) = match parse_page(req) {
        Ok(page) => page,
        Err(resp) => return resp,
    };
    let (total, hits) = index.search_page(needle, limit, offset);
    Response::json(200, &PagedSearchAnswer { query: needle.to_owned(), total, limit, offset, hits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::reload::IndexSlot;
    use soi_bgp::PrefixToAs;
    use soi_core::{Dataset, OrgRecord};
    use soi_types::{OrgId, Rir};
    use std::io::BufReader;
    use std::sync::Arc;

    fn index() -> ServiceIndex {
        let rec = OrgRecord {
            conglomerate_name: "Telenor".into(),
            org_id: Some(OrgId(1)),
            org_name: "Telenor".into(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: vec![Asn(2119)],
        };
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        ServiceIndex::build(Dataset { organizations: vec![rec] }, &table)
    }

    fn state() -> ServerState {
        ServerState {
            slot: Arc::new(IndexSlot::new(Arc::new(index()), None)),
            metrics: Arc::new(Metrics::new()),
            reloader: None,
            history: None,
            risk: None,
            respcache: None,
        }
    }

    /// A risk context matching the Telenor fixture: monitor AS1 (US)
    /// sells transit to the state-owned AS2119, whose 10.0.0.0/8 space
    /// geolocates to NO.
    fn risk_context() -> soi_risk::RiskContext {
        use soi_bgp::Monitor;
        use soi_geo::GeoDb;
        use soi_topology::AsGraphBuilder;
        use soi_types::cc;

        let mut b = AsGraphBuilder::new();
        b.add_transit(Asn(2119), Asn(1));
        let graph = b.build().unwrap();
        let geo = GeoDb::from_blocks([("10.0.0.0/8".parse().unwrap(), cc("NO"))]).unwrap();
        let as_country = [(Asn(1), cc("US")), (Asn(2119), cc("NO"))].into_iter().collect();
        soi_risk::RiskContext::new(
            graph,
            vec![Monitor { id: 0, asn: Asn(1) }],
            geo,
            as_country,
            soi_risk::RiskConfig::default(),
        )
    }

    /// [`state`] with the payload tracked and a [`RiskService`] attached,
    /// so the `/v1/risk` routes can compute live reports.
    fn risk_state() -> ServerState {
        use soi_core::{payload_checksum, SnapshotPayload};

        let st = state();
        let mut dataset = st.slot.load().dataset().clone();
        dataset.canonicalize();
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        let base = SnapshotPayload { dataset, table };
        st.slot.attach_payload(Arc::new(base.clone()), payload_checksum(&base).unwrap());
        ServerState { risk: Some(Arc::new(crate::risk::RiskService::new(risk_context(), 1))), ..st }
    }

    /// A server state over a hand-built two-year history store: year 0
    /// is the base Telenor dataset, year 1 adds PTCL (org 2, AS17557),
    /// year 2 rebrands it. Spacing 2 ⇒ checkpoints at years 0 and 2.
    fn history_state(tag: &str) -> (ServerState, std::path::PathBuf) {
        use soi_core::{payload_checksum, SnapshotPayload};
        use soi_delta::{DatasetDelta, DeltaProvenance, EventBatch};
        use soi_history::{HistoryBuildConfig, HistoryWriter};

        let base_index = index();
        let mut dataset = base_index.dataset().clone();
        dataset.canonicalize();
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        let base = SnapshotPayload { dataset: dataset.clone(), table: table.clone() };

        let mut year1 = dataset.clone();
        let mut newcomer = year1.organizations[0].clone();
        newcomer.org_id = Some(OrgId(2));
        newcomer.org_name = "PTCL".into();
        newcomer.conglomerate_name = "PTCL".into();
        newcomer.ownership_cc = "PK".parse().unwrap();
        newcomer.ownership_country_name = "Pakistan".into();
        newcomer.asns = vec![Asn(17557)];
        year1.organizations.push(newcomer);
        year1.canonicalize();
        let p1 = SnapshotPayload { dataset: year1.clone(), table: table.clone() };

        let mut year2 = year1.clone();
        for rec in &mut year2.organizations {
            if rec.org_id == Some(OrgId(2)) {
                rec.org_name = "PTCL Group".into();
            }
        }
        year2.canonicalize();
        let p2 = SnapshotPayload { dataset: year2, table };

        let dir =
            std::env::temp_dir().join(format!("soi-handlers-history-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HistoryBuildConfig { checkpoint_spacing: 2, ..Default::default() };
        let mut writer = HistoryWriter::create(&dir, &base, &cfg).expect("writer");
        for (prev, next) in [(&base, &p1), (&p1, &p2)] {
            let delta = DatasetDelta::compute(
                prev,
                next,
                EventBatch::default(),
                0,
                0,
                Vec::new(),
                DeltaProvenance::default(),
            )
            .expect("delta");
            writer.append(&delta, 1).expect("append");
        }
        writer.finish().expect("finish");

        let slot = Arc::new(IndexSlot::new(Arc::new(base_index), None));
        slot.attach_payload(Arc::new(base.clone()), payload_checksum(&base).unwrap());
        let history = crate::history::HistoryService::open(&dir).expect("open history");
        let state = ServerState {
            slot,
            metrics: Arc::new(Metrics::new()),
            reloader: None,
            history: Some(Arc::new(history)),
            risk: None,
            respcache: None,
        };
        (state, dir)
    }

    fn request(method: &str, target: &str) -> Request {
        request_with_body(method, target, "")
    }

    fn request_with_body(method: &str, target: &str, body: &str) -> Request {
        let raw =
            format!("{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let mut reader = BufReader::new(raw.as_bytes());
        crate::http::read_request(&mut reader).unwrap()
    }

    fn get(state: &ServerState, target: &str) -> (&'static str, Response) {
        respond(state, 0, &request("GET", target))
    }

    fn body(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    #[test]
    fn routes_dispatch_and_label() {
        let st = state();
        for (target, route, status) in [
            ("/healthz", "healthz", 200),
            ("/metrics", "metrics", 200),
            ("/asn/AS2119", "asn", 200),
            ("/asn/2119", "asn", 200),
            ("/asn/banana", "asn", 400),
            ("/ip/10.1.2.3", "ip", 200),
            ("/ip/999.1.1.1", "ip", 400),
            ("/prefix/10.1.0.0/16", "prefix", 200),
            ("/prefix/10.1.0.0/99", "prefix", 400),
            ("/country/no", "country", 200),
            ("/country/xx", "country", 404),
            ("/country/nope", "country", 400),
            ("/search?q=telenor", "search", 200),
            ("/search", "search", 400),
            ("/dataset", "dataset", 200),
            ("/nope", "other", 404),
        ] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, route, "{target}");
            assert_eq!(resp.status, status, "{target}: {}", body(&resp));
        }
    }

    #[test]
    fn asn_answer_carries_the_record() {
        let st = state();
        let (_, resp) = get(&st, "/asn/AS2119");
        let text = body(&resp);
        assert!(text.contains("\"state_owned\":true"), "{text}");
        assert!(text.contains("Telenor"), "{text}");
        let (_, resp) = get(&st, "/asn/AS1");
        assert!(body(&resp).contains("\"state_owned\":false"));
    }

    #[test]
    fn non_get_methods_rejected() {
        let st = state();
        let (label, resp) = respond(&st, 0, &request("POST", "/asn/AS2119"));
        assert_eq!(label, "other");
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn admin_reload_without_a_snapshot_is_conflict_not_crash() {
        let st = state();
        // No reloader configured: POST is a 409, and the route is still
        // labelled "admin" for metrics.
        let (label, resp) = respond(&st, 0, &request("POST", "/admin/reload"));
        assert_eq!(label, "admin");
        assert_eq!(resp.status, 409, "{}", body(&resp));
        // Wrong method is a 405 even on the admin route.
        let (label, resp) = respond(&st, 0, &request("GET", "/admin/reload"));
        assert_eq!(label, "admin");
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn admin_delta_rejections_map_to_statuses() {
        let st = state();
        // Wrong method is a 405 on the delta route too.
        let (label, resp) = respond(&st, 0, &request("GET", "/admin/delta"));
        assert_eq!(label, "admin");
        assert_eq!(resp.status, 405);
        // A body that is not a delta document is the client's problem.
        let (label, resp) = respond(&st, 0, &request_with_body("POST", "/admin/delta", "{}"));
        assert_eq!(label, "admin");
        assert_eq!(resp.status, 400, "{}", body(&resp));
        // Not JSON at all.
        let (_, resp) = respond(&st, 0, &request_with_body("POST", "/admin/delta", "nope"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn admin_delta_applies_against_the_tracked_payload() {
        use soi_core::{payload_checksum, SnapshotPayload};
        use soi_delta::{DatasetDelta, DeltaProvenance, EventBatch};

        let st = state();
        let base_index = st.slot.load();
        let mut dataset = base_index.dataset().clone();
        dataset.canonicalize();
        let table = PrefixToAs::from_entries([("10.0.0.0/8".parse().unwrap(), Asn(2119))]).unwrap();
        let base = SnapshotPayload { dataset: dataset.clone(), table: table.clone() };
        st.slot.attach_payload(Arc::new(base.clone()), payload_checksum(&base).unwrap());

        let mut grown = dataset;
        let mut newcomer = base.dataset.organizations[0].clone();
        newcomer.org_name = "PTCL".into();
        newcomer.conglomerate_name = "PTCL".into();
        newcomer.asns = vec![Asn(17557)];
        grown.organizations.push(newcomer);
        grown.canonicalize();
        let next = SnapshotPayload { dataset: grown, table };
        let delta = DatasetDelta::compute(
            &base,
            &next,
            EventBatch::default(),
            0,
            0,
            Vec::new(),
            DeltaProvenance::default(),
        )
        .unwrap();
        let doc = delta.to_json().unwrap();

        assert!(!st.slot.load().lookup_asn(Asn(17557)).state_owned);
        let (label, resp) = respond(&st, 0, &request_with_body("POST", "/admin/delta", &doc));
        assert_eq!(label, "admin");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        assert!(body(&resp).contains("\"generation\":2"), "{}", body(&resp));
        assert!(st.slot.load().lookup_asn(Asn(17557)).state_owned);

        // The same delta again is stale: the tracked base moved on.
        let (_, resp) = respond(&st, 0, &request_with_body("POST", "/admin/delta", &doc));
        assert_eq!(resp.status, 409, "{}", body(&resp));
        assert!(body(&resp).contains("stale"), "{}", body(&resp));
    }

    #[test]
    fn metrics_route_reports_generation_and_index_sizes() {
        let st = state();
        let (_, resp) = get(&st, "/metrics");
        let text = body(&resp);
        assert!(text.contains("\"generation\":1"), "{text}");
        assert!(text.contains("\"organizations\":1"), "{text}");
    }

    #[test]
    fn search_limit_is_clamped() {
        let st = state();
        let (_, resp) = get(&st, "/search?q=telenor&limit=0");
        assert_eq!(resp.status, 200, "limit 0 clamps to 1 rather than erroring");
        let (_, resp) = get(&st, "/search?q=e&limit=junk");
        assert_eq!(resp.status, 200);
    }

    fn envelope(resp: &Response) -> serde_json::Value {
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(v["error"]["code"].is_string(), "missing error.code: {}", body(resp));
        assert!(v["error"]["message"].is_string(), "missing error.message: {}", body(resp));
        v
    }

    #[test]
    fn v1_routes_dispatch_with_labels_and_envelope_errors() {
        let st = state();
        for (target, route, status, code) in [
            ("/v1/asn/AS2119", "v1_asn", 200, ""),
            ("/v1/asn/2119", "v1_asn", 200, ""),
            ("/v1/asn/banana", "v1_asn", 400, "invalid_asn"),
            ("/v1/ip/10.1.2.3", "v1_ip", 200, ""),
            ("/v1/ip/999.1.1.1", "v1_ip", 400, "invalid_ip"),
            ("/v1/prefix/10.1.0.0/16", "v1_prefix", 200, ""),
            ("/v1/prefix/10.1.0.0/99", "v1_prefix", 400, "invalid_prefix"),
            ("/v1/country", "v1_country", 200, ""),
            ("/v1/country/no", "v1_country", 200, ""),
            ("/v1/country/xx", "v1_country", 404, "unknown_country"),
            ("/v1/country/nope", "v1_country", 400, "invalid_country"),
            ("/v1/search?q=telenor", "v1_search", 200, ""),
            ("/v1/search", "v1_search", 400, "missing_query"),
            ("/v1/dataset", "v1_dataset", 200, ""),
            ("/v1/nope", "v1_other", 404, "not_found"),
            ("/v1", "v1_other", 404, "not_found"),
        ] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, route, "{target}");
            assert_eq!(resp.status, status, "{target}: {}", body(&resp));
            assert!(resp.header("Deprecation").is_none(), "{target} must not be deprecated");
            if status >= 400 {
                let v = envelope(&resp);
                assert_eq!(v["error"]["code"].as_str(), Some(code), "{target}: {}", body(&resp));
            }
        }
    }

    #[test]
    fn legacy_aliases_answer_identically_and_carry_deprecation_headers() {
        let st = state();
        for (legacy, v1) in [
            ("/asn/AS2119", "/v1/asn/AS2119"),
            ("/ip/10.1.2.3", "/v1/ip/10.1.2.3"),
            ("/prefix/10.1.0.0/16", "/v1/prefix/10.1.0.0/16"),
            ("/country/no", "/v1/country/no"),
            ("/dataset", "/v1/dataset"),
        ] {
            let (_, old) = get(&st, legacy);
            let (_, new) = get(&st, v1);
            assert_eq!(old.status, 200, "{legacy}");
            assert_eq!(old.body, new.body, "{legacy} and {v1} disagree");
            assert_eq!(old.header("Deprecation"), Some("true"), "{legacy}");
            let link = old.header("Link").expect(legacy);
            assert_eq!(link, format!("<{v1}>; rel=\"successor-version\""), "{legacy}");
        }
        // Search answers differ by design (pagination metadata), but the
        // legacy route still carries the headers and its old error shape.
        let (_, resp) = get(&st, "/search?q=telenor");
        assert_eq!(resp.header("Deprecation"), Some("true"));
        let (_, resp) = get(&st, "/search");
        assert_eq!(resp.status, 400);
        assert!(body(&resp).starts_with("{\"error\":\""), "legacy error shape: {}", body(&resp));
        // Operational routes are unversioned, not deprecated.
        for target in ["/healthz", "/metrics"] {
            let (_, resp) = get(&st, target);
            assert!(resp.header("Deprecation").is_none(), "{target}");
        }
    }

    #[test]
    fn non_get_on_v1_uses_the_envelope() {
        let st = state();
        let (label, resp) = respond(&st, 0, &request("POST", "/v1/asn/AS2119"));
        assert_eq!(label, "v1_other");
        assert_eq!(resp.status, 405);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("method_not_allowed"));
    }

    #[test]
    fn v1_pagination_validates_and_reports_totals() {
        let st = state();
        // Malformed paging is an envelope error, never a silent default.
        for (target, code) in [
            ("/v1/search?q=e&limit=junk", "invalid_limit"),
            ("/v1/search?q=e&limit=0", "invalid_limit"),
            ("/v1/search?q=e&limit=101", "invalid_limit"),
            ("/v1/search?q=e&offset=junk", "invalid_offset"),
            ("/v1/country?limit=junk", "invalid_limit"),
        ] {
            let (_, resp) = get(&st, target);
            assert_eq!(resp.status, 400, "{target}: {}", body(&resp));
            let v = envelope(&resp);
            assert_eq!(v["error"]["code"].as_str(), Some(code), "{target}");
            assert!(v["error"]["detail"].is_string(), "{target}: detail echoes the bad value");
        }
        // A valid page reports the full total alongside the slice.
        let (_, resp) = get(&st, "/v1/search?q=telenor&limit=1");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(1), "{}", body(&resp));
        assert_eq!(v["limit"].as_u64(), Some(1));
        assert_eq!(v["offset"].as_u64(), Some(0));
        assert_eq!(v["hits"].as_array().unwrap().len(), 1);
        // Paging past the end is empty but keeps the total.
        let (_, resp) = get(&st, "/v1/search?q=telenor&offset=5");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(1));
        assert!(v["hits"].as_array().unwrap().is_empty());
        // The country collection pages in country-code order.
        let (_, resp) = get(&st, "/v1/country");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(1), "{}", body(&resp));
        assert_eq!(v["countries"][0]["country"].as_str(), Some("NO"));
    }

    #[test]
    fn as_of_without_history_is_conflict_and_bad_years_are_client_errors() {
        let st = state();
        // Malformed year: client error before the store is even consulted.
        let (label, resp) = get(&st, "/v1/asn/AS2119?at=banana");
        assert_eq!(label, "v1_asn");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        // Well-formed year but no store attached: 409, not 500.
        for target in ["/v1/asn/AS2119?at=1", "/v1/search?q=tel&at=0", "/v1/country?at=2"] {
            let (_, resp) = get(&st, target);
            assert_eq!(resp.status, 409, "{target}: {}", body(&resp));
            assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("history_unavailable"));
        }
        // The history routes themselves answer the same way.
        for target in ["/v1/history", "/v1/history/org/1"] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, "v1_history", "{target}");
            assert_eq!(resp.status, 409, "{target}");
        }
        // Without ?at= the live index answers; nothing needs the store.
        let (_, resp) = get(&st, "/v1/asn/AS2119");
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn as_of_queries_answer_from_the_years_view() {
        let (st, dir) = history_state("asof");
        // AS17557 joins the dataset in year 1.
        let (label, resp) = get(&st, "/v1/asn/17557?at=0");
        assert_eq!(label, "v1_asn");
        assert_eq!(resp.status, 200);
        assert!(body(&resp).contains("\"state_owned\":false"), "{}", body(&resp));
        let (_, resp) = get(&st, "/v1/asn/17557?at=1");
        assert!(body(&resp).contains("\"state_owned\":true"), "{}", body(&resp));
        assert!(body(&resp).contains("PTCL"), "{}", body(&resp));
        // Year 2 (a checkpoint year: zero replay) carries the rebrand.
        let (_, resp) = get(&st, "/v1/asn/17557?at=2");
        assert!(body(&resp).contains("PTCL Group"), "{}", body(&resp));
        // The live index (no ?at=) still predates PTCL.
        let (_, resp) = get(&st, "/v1/asn/17557");
        assert!(body(&resp).contains("\"state_owned\":false"), "{}", body(&resp));
        // Search and country answer as-of too.
        let (_, resp) = get(&st, "/v1/search?q=ptcl&at=2");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(1), "{}", body(&resp));
        let (_, resp) = get(&st, "/v1/country/pk?at=1");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let (_, resp) = get(&st, "/v1/country/pk?at=0");
        assert_eq!(resp.status, 404, "PK only exists from year 1: {}", body(&resp));
        // Past the stored range: 404 with the range in the message.
        let (_, resp) = get(&st, "/v1/asn/17557?at=3");
        assert_eq!(resp.status, 404);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("unknown_year"));
        // The LRU served the repeated years: hits < requests, and some
        // materialization work was recorded.
        let snap = st.metrics.snapshot(0, &st.status());
        assert!(snap.history_as_of_requests >= 7, "{}", snap.history_as_of_requests);
        assert!(snap.history_cache_hits >= 1, "repeated ?at= years must hit the cache");
        assert!(snap.history_deltas_replayed >= 1, "year 1 needs one replayed segment");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_dataset_answers_as_of_a_year() {
        // Regression: /v1/dataset used to ignore ?at= and always summarize
        // the live index, silently disagreeing with every other read route.
        let (st, dir) = history_state("dataset-asof");
        let (label, resp) = get(&st, "/v1/dataset?at=0");
        assert_eq!(label, "v1_dataset");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["organizations"].as_u64(), Some(1), "{}", body(&resp));
        // PTCL joins in year 1, so the as-of summary grows.
        let (_, resp) = get(&st, "/v1/dataset?at=1");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["organizations"].as_u64(), Some(2), "{}", body(&resp));
        // Without ?at= the live index (still 1 org) answers.
        let (_, resp) = get(&st, "/v1/dataset");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["organizations"].as_u64(), Some(1), "{}", body(&resp));
        // The route shares the as-of error envelope with the other reads.
        let (_, resp) = get(&st, "/v1/dataset?at=banana");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        let (_, resp) = get(&st, "/v1/dataset?at=9");
        assert_eq!(resp.status, 404);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("unknown_year"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_routes_report_the_store_and_org_timelines() {
        let (st, dir) = history_state("timeline");
        let (label, resp) = get(&st, "/v1/history");
        assert_eq!(label, "v1_history");
        assert_eq!(resp.status, 200);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["years"].as_u64(), Some(2), "{}", body(&resp));
        assert_eq!(v["checkpoint_spacing"].as_u64(), Some(2));
        assert_eq!(v["checkpoints"], serde_json::json!([0, 2]));

        // PTCL (org 2): absent at 0, appears at 1, rebrands at 2 — three
        // change-points.
        let (_, resp) = get(&st, "/v1/history/org/2");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let points = v["points"].as_array().unwrap();
        assert_eq!(points.len(), 3, "{}", body(&resp));
        assert_eq!(points[0]["year"].as_u64(), Some(0));
        assert_eq!(points[0]["present"].as_bool(), Some(false));
        assert_eq!(points[1]["year"].as_u64(), Some(1));
        assert_eq!(points[1]["org_name"].as_str(), Some("PTCL"));
        assert_eq!(points[1]["owner"].as_str(), Some("PK"));
        assert_eq!(points[2]["org_name"].as_str(), Some("PTCL Group"));
        assert_eq!(points[2]["asns"], serde_json::json!([17557]));

        // Telenor (org 1) never changes: a single year-0 point.
        let (_, resp) = get(&st, "/v1/history/org/1");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["points"].as_array().unwrap().len(), 1, "{}", body(&resp));

        // Unknown and malformed ids.
        let (_, resp) = get(&st, "/v1/history/org/99");
        assert_eq!(resp.status, 404);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("unknown_org"));
        let (_, resp) = get(&st, "/v1/history/org/banana");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_org"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn risk_routes_dispatch_with_labels_and_envelope_errors() {
        let st = risk_state();
        for (target, status, code) in [
            ("/v1/risk/country/no", 200, ""),
            ("/v1/risk/country/xx", 404, "unknown_country"),
            ("/v1/risk/country/nope", 400, "invalid_country"),
            ("/v1/risk/chokepoints/no", 200, ""),
            ("/v1/risk/chokepoints/xx", 404, "unknown_country"),
            ("/v1/risk/chokepoints/nope", 400, "invalid_country"),
            ("/v1/risk/classes", 200, ""),
        ] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, "v1_risk", "{target}");
            assert_eq!(resp.status, status, "{target}: {}", body(&resp));
            if status >= 400 {
                let v = envelope(&resp);
                assert_eq!(v["error"]["code"].as_str(), Some(code), "{target}: {}", body(&resp));
            }
        }
        // An unknown /v1/risk sub-route falls to the v1 catch-all.
        let (label, resp) = get(&st, "/v1/risk/nope");
        assert_eq!(label, "v1_other");
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn risk_answers_carry_the_analyses_and_the_report_checksum() {
        let st = risk_state();
        // NO's one route is [AS1, AS2119]: monitor then origin, so there
        // is no cuttable transit AS in between.
        let (_, resp) = get(&st, "/v1/risk/chokepoints/no");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let checksum = v["report_checksum"].as_u64().expect("checksum present");
        assert!(checksum != 0);
        assert_eq!(v["chokepoints"]["country"].as_str(), Some("NO"), "{}", body(&resp));
        assert_eq!(v["chokepoints"]["routes"].as_u64(), Some(1));
        assert_eq!(v["chokepoints"]["cuttable"].as_u64(), Some(0));
        assert_eq!(v["chokepoints"]["partitioned"].as_bool(), Some(false));
        // The exposure view shares the same report.
        let (_, resp) = get(&st, "/v1/risk/country/no");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["report_checksum"].as_u64(), Some(checksum));
        assert_eq!(v["country"]["country"].as_str(), Some("NO"));
        // Classification covers both graph ASes: AS1 sells transit (STP),
        // the state-owned AS2119 is a stub (EC).
        let (_, resp) = get(&st, "/v1/risk/classes");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["report_checksum"].as_u64(), Some(checksum));
        assert_eq!(v["total"].as_u64(), Some(2), "{}", body(&resp));
        let rows = v["rows"].as_array().unwrap();
        assert_eq!(rows[0]["asn"].as_u64(), Some(1));
        assert_eq!(rows[0]["class"].as_str(), Some("STP"));
        assert_eq!(rows[1]["asn"].as_u64(), Some(2119));
        assert_eq!(rows[1]["class"].as_str(), Some("EC"));
        assert_eq!(rows[1]["state_owned"].as_bool(), Some(true));
    }

    #[test]
    fn risk_classes_paginate_with_validated_bounds() {
        let st = risk_state();
        for (target, code) in [
            ("/v1/risk/classes?limit=junk", "invalid_limit"),
            ("/v1/risk/classes?limit=0", "invalid_limit"),
            ("/v1/risk/classes?limit=101", "invalid_limit"),
            ("/v1/risk/classes?offset=junk", "invalid_offset"),
        ] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, "v1_risk", "{target}");
            assert_eq!(resp.status, 400, "{target}: {}", body(&resp));
            assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some(code), "{target}");
        }
        // A 1-row page still reports the full total and cross-tab.
        let (_, resp) = get(&st, "/v1/risk/classes?limit=1");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(2), "{}", body(&resp));
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
        assert_eq!(v["summary"].as_array().unwrap().len(), 4, "all four classes");
        // Paging past the end is empty, not an error.
        let (_, resp) = get(&st, "/v1/risk/classes?offset=9");
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total"].as_u64(), Some(2));
        assert!(v["rows"].as_array().unwrap().is_empty());
    }

    #[test]
    fn risk_without_a_service_or_payload_is_conflict_not_crash() {
        // No RiskService attached: every risk route is a 409.
        let st = state();
        for target in ["/v1/risk/country/no", "/v1/risk/chokepoints/no", "/v1/risk/classes"] {
            let (label, resp) = get(&st, target);
            assert_eq!(label, "v1_risk", "{target}");
            assert_eq!(resp.status, 409, "{target}: {}", body(&resp));
            assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("risk_unavailable"));
        }
        // A malformed country is still the client's problem first.
        let (_, resp) = get(&st, "/v1/risk/country/nope");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_country"));
        // A service without a tracked payload has nothing to analyze.
        let st = ServerState {
            risk: Some(Arc::new(crate::risk::RiskService::new(risk_context(), 1))),
            ..state()
        };
        let (_, resp) = get(&st, "/v1/risk/classes");
        assert_eq!(resp.status, 409, "{}", body(&resp));
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("risk_unavailable"));
    }

    #[test]
    fn risk_reports_are_cached_per_generation() {
        let st = risk_state();
        let (_, first) = get(&st, "/v1/risk/classes");
        assert_eq!(first.status, 200);
        let (_, second) = get(&st, "/v1/risk/country/no");
        assert_eq!(second.status, 200);
        let snap = st.metrics.snapshot(0, &st.status());
        assert_eq!(snap.risk_reports_computed, 1, "one report serves both routes");
        assert!(snap.risk_cache_hits >= 1);
        assert_eq!(snap.risk_requests, 2);
        assert_eq!(snap.per_route["v1_risk"], 2);
    }

    #[test]
    fn risk_as_of_resolves_through_the_history_store() {
        let (mut st, dir) = history_state("risk-asof");
        st.risk = Some(Arc::new(crate::risk::RiskService::new(risk_context(), 1)));
        // The as-of error envelope matches the read routes'.
        let (label, resp) = get(&st, "/v1/risk/country/no?at=banana");
        assert_eq!(label, "v1_risk");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        let (_, resp) = get(&st, "/v1/risk/country/no?at=9");
        assert_eq!(resp.status, 404);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("unknown_year"));
        // Every stored year answers; the topology context is unchanged by
        // ownership churn, so NO stays observed throughout.
        for year in 0..=2 {
            let (_, resp) = get(&st, &format!("/v1/risk/country/no?at={year}"));
            assert_eq!(resp.status, 200, "year {year}: {}", body(&resp));
            let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
            assert_eq!(v["country"]["country"].as_str(), Some("NO"), "year {year}");
        }
        // Repeating a year hits the (generation, year) cache.
        let before = st.metrics.snapshot(0, &st.status()).risk_reports_computed;
        let (_, resp) = get(&st, "/v1/risk/classes?at=1");
        assert_eq!(resp.status, 200);
        let after = st.metrics.snapshot(0, &st.status()).risk_reports_computed;
        assert_eq!(before, after, "year 1 was already materialized");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn risk_as_of_without_history_is_conflict() {
        // A risk service alone cannot resolve ?at=: the history envelope
        // answers, just like the read routes.
        let st = risk_state();
        let (_, resp) = get(&st, "/v1/risk/classes?at=1");
        assert_eq!(resp.status, 409, "{}", body(&resp));
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("history_unavailable"));
    }

    fn get_cached(state: &ServerState, target: &str) -> (&'static str, Response) {
        respond_cached(state, 0, &request("GET", target))
    }

    fn conditional(state: &ServerState, target: &str, etag: &str) -> Response {
        let raw = format!("GET {target} HTTP/1.1\r\nIf-None-Match: {etag}\r\n\r\n");
        let mut reader = BufReader::new(raw.as_bytes());
        let req = crate::http::read_request(&mut reader).unwrap();
        respond_cached(state, 0, &req).1
    }

    #[test]
    fn v1_data_routes_carry_strong_etags_and_revalidate_to_304() {
        let st = state();
        for target in ["/v1/asn/AS2119", "/v1/country", "/v1/search?q=tel", "/v1/dataset"] {
            let (_, resp) = get_cached(&st, target);
            assert_eq!(resp.status, 200, "{target}");
            let etag = resp.header("ETag").expect("etag on 200").to_owned();
            assert!(etag.starts_with("\"g1"), "{target}: generation-pinned etag, got {etag}");
            // The canonical cheap-revalidation flow: echo the tag back.
            let not_modified = conditional(&st, target, &etag);
            assert_eq!(not_modified.status, 304, "{target}");
            assert!(not_modified.body.is_empty(), "{target}: 304 carries no body");
            assert_eq!(not_modified.header("ETag"), Some(etag.as_str()), "{target}");
            // A stale or weak-but-matching tag still revalidates; a
            // mismatched one serves the full entity again.
            assert_eq!(conditional(&st, target, &format!("W/{etag}")).status, 304);
            assert_eq!(conditional(&st, target, "*").status, 304);
            assert_eq!(conditional(&st, target, "\"gdead-beef\"").status, 200, "{target}");
        }
        // Errors never carry validators.
        let (_, resp) = get_cached(&st, "/v1/asn/banana");
        assert_eq!(resp.status, 400);
        assert!(resp.header("ETag").is_none());
        // A reload-style swap changes the generation, therefore the tag.
        let (_, before) = get_cached(&st, "/v1/asn/AS2119");
        st.slot.swap(Arc::new(index()), None);
        let (_, after) = get_cached(&st, "/v1/asn/AS2119");
        assert_ne!(before.header("ETag"), after.header("ETag"), "etag moves with generation");
    }

    #[test]
    fn head_answers_with_get_headers() {
        let st = state();
        let (label, get_resp) = get_cached(&st, "/v1/asn/AS2119");
        let (head_label, head_resp) = respond_cached(&st, 0, &request("HEAD", "/v1/asn/AS2119"));
        assert_eq!(label, head_label);
        assert_eq!(head_resp.status, 200);
        // The entity (and its validators) is identical; the server strips
        // the body at write time while keeping Content-Length.
        assert_eq!(head_resp.header("ETag"), get_resp.header("ETag"));
        assert_eq!(head_resp.body, get_resp.body);
    }

    #[test]
    fn as_of_answers_carry_x_soi_year_and_year_pinned_etags() {
        let (mut st, dir) = history_state("etag-asof");
        // Live answers: generation-pinned tag, no year header.
        let (_, live) = get_cached(&st, "/v1/asn/AS2119");
        assert!(live.header("X-Soi-Year").is_none());
        assert!(live.header("ETag").unwrap().starts_with("\"g"));
        // As-of answers: year header plus a history-pinned tag that
        // differs per year.
        let (_, y1) = get_cached(&st, "/v1/asn/AS17557?at=1");
        assert_eq!(y1.status, 200, "{}", body(&y1));
        assert_eq!(y1.header("X-Soi-Year"), Some("1"));
        let tag1 = y1.header("ETag").unwrap().to_owned();
        assert!(tag1.starts_with("\"h"), "{tag1}");
        let (_, y2) = get_cached(&st, "/v1/asn/AS17557?at=2");
        assert_eq!(y2.header("X-Soi-Year"), Some("2"));
        assert_ne!(y2.header("ETag"), Some(tag1.as_str()), "year is part of the tag");
        assert_eq!(conditional(&st, "/v1/asn/AS17557?at=1", &tag1).status, 304);
        // The history summary and timelines pin to the whole store.
        let (_, resp) = get_cached(&st, "/v1/history");
        assert!(resp.header("ETag").unwrap().starts_with("\"t"), "{:?}", resp.header("ETag"));
        let (_, resp) = get_cached(&st, "/v1/history/org/2");
        assert!(resp.header("ETag").unwrap().starts_with("\"t"));
        // Risk answers pin to the report checksum and carry the year.
        st.risk = Some(Arc::new(crate::risk::RiskService::new(risk_context(), 4)));
        let (_, resp) = get_cached(&st, "/v1/risk/classes?at=1");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        assert_eq!(resp.header("X-Soi-Year"), Some("1"));
        assert!(resp.header("ETag").unwrap().starts_with("\"r"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contradictory_at_and_range_params_rejected_by_the_shared_validator() {
        let (mut st, dir) = history_state("at-validator");
        st.risk = Some(Arc::new(crate::risk::RiskService::new(risk_context(), 4)));
        // One validator, every year-scoped surface: data routes, history
        // routes, risk routes.
        for target in [
            "/v1/asn/AS2119?at=1&from=0",
            "/v1/country?at=1&to=2",
            "/v1/history?at=1&from=0",
            "/v1/history/org/1?at=1&to=2",
            "/v1/risk/classes?at=1&from=0",
            "/v1/risk/country/no?at=1&to=2",
            "/v1/risk/diff?at=1&from=0&to=2",
        ] {
            let (_, resp) = get_cached(&st, target);
            assert_eq!(resp.status, 400, "{target}: {}", body(&resp));
            let v = envelope(&resp);
            assert_eq!(v["error"]["code"].as_str(), Some("invalid_at"), "{target}");
            assert!(
                v["error"]["message"].as_str().unwrap().contains("cannot be combined"),
                "{target}: {}",
                body(&resp)
            );
        }
        // Malformed `at` funnels through the same validator.
        let (_, resp) = get_cached(&st, "/v1/history?at=banana");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        // A valid standalone year is accepted (and ignored by the
        // store-wide history summary).
        let (_, resp) = get_cached(&st, "/v1/history?at=1");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn risk_diff_serves_per_country_deltas_between_stored_years() {
        let (mut st, dir) = history_state("risk-diff");
        st.risk = Some(Arc::new(crate::risk::RiskService::new(risk_context(), 4)));
        let (label, resp) = get_cached(&st, "/v1/risk/diff?from=0&to=2");
        assert_eq!(label, "v1_risk");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["from"].as_u64(), Some(0));
        assert_eq!(v["to"].as_u64(), Some(2));
        assert!(v["from_checksum"].as_u64().is_some());
        assert_eq!(v["classes"].as_array().unwrap().len(), 4, "full cross-tab delta");
        // The topology context is year-invariant in this fixture, so NO
        // is present and unchanged on both sides.
        let countries = v["countries"].as_array().unwrap();
        let no = countries.iter().find(|c| c["country"].as_str() == Some("NO")).expect("NO scored");
        assert_eq!(no["present_from"].as_bool(), Some(true));
        assert_eq!(no["present_to"].as_bool(), Some(true));
        assert_eq!(no["transit_ases_delta"].as_i64(), Some(0));
        // The tag pins both reports.
        assert!(resp.header("ETag").unwrap().starts_with("\"rd"), "{:?}", resp.header("ETag"));
        // Pagination shares the standard validators.
        let (_, resp) = get_cached(&st, "/v1/risk/diff?from=0&to=2&limit=0");
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_limit"));
        // Error envelope: missing params, unknown years.
        let (_, resp) = get_cached(&st, "/v1/risk/diff?from=0");
        assert_eq!(resp.status, 400, "{}", body(&resp));
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        assert_eq!(envelope(&resp)["error"]["detail"].as_str(), Some("to"));
        let (_, resp) = get_cached(&st, "/v1/risk/diff?from=banana&to=2");
        assert_eq!(resp.status, 400);
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("invalid_at"));
        let (_, resp) = get_cached(&st, "/v1/risk/diff?from=0&to=9");
        assert_eq!(resp.status, 404, "{}", body(&resp));
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("unknown_year"));
        let _ = std::fs::remove_dir_all(&dir);

        // Without a history store the diff cannot resolve any year.
        let st = risk_state();
        let (_, resp) = get_cached(&st, "/v1/risk/diff?from=0&to=1");
        assert_eq!(resp.status, 409, "{}", body(&resp));
        assert_eq!(envelope(&resp)["error"]["code"].as_str(), Some("history_unavailable"));
    }

    #[test]
    fn response_cache_repeats_and_invalidates_on_generation_bump() {
        let st = ServerState { respcache: Some(crate::respcache::RespCache::new(8)), ..state() };
        let (_, first) = get_cached(&st, "/v1/asn/AS2119");
        let (_, second) = get_cached(&st, "/v1/asn/AS2119");
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body, "cached answer is byte-identical");
        assert_eq!(first.headers, second.headers);
        let snap = st.metrics.snapshot(0, &st.status());
        assert_eq!(snap.respcache_misses, 1);
        assert_eq!(snap.respcache_hits, 1);
        // A conditional repeat is served as a 304 *from the cache*.
        let etag = first.header("ETag").unwrap().to_owned();
        let not_modified = conditional(&st, "/v1/asn/AS2119", &etag);
        assert_eq!(not_modified.status, 304);
        assert_eq!(st.metrics.snapshot(0, &st.status()).respcache_hits, 2);
        // Swapping the index bumps the generation: the old entry is
        // unreachable and the next request misses.
        st.slot.swap(Arc::new(index()), None);
        let (_, after) = get_cached(&st, "/v1/asn/AS2119");
        assert_eq!(after.status, 200);
        let snap = st.metrics.snapshot(0, &st.status());
        assert_eq!(snap.respcache_misses, 2, "generation bump invalidates");
        // Errors are looked up but never stored: two identical bad
        // requests are two misses.
        let before = st.metrics.snapshot(0, &st.status());
        let _ = get_cached(&st, "/v1/asn/banana");
        let _ = get_cached(&st, "/v1/asn/banana");
        let snap = st.metrics.snapshot(0, &st.status());
        assert_eq!(snap.respcache_hits, before.respcache_hits);
        assert_eq!(snap.respcache_misses, before.respcache_misses + 2);
        // Non-/v1 routes bypass the cache entirely.
        let _ = get_cached(&st, "/healthz");
        let after = st.metrics.snapshot(0, &st.status());
        assert_eq!(after.respcache_misses, snap.respcache_misses);
    }
}
