//! Lock-free service metrics: request counters, a log-bucketed latency
//! histogram with p50/p95/p99, and index sizes.
//!
//! Everything is plain atomics so the hot path never contends; `/metrics`
//! takes a relaxed snapshot (fast, possibly a few events torn across
//! counters — fine for observability).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::Serialize;
use soi_core::{SnapshotBuildInfo, StageTimings};

use crate::index::IndexSizes;

/// Route labels tracked per-route; `other` catches 404s and probes.
/// `v1_*` labels count the versioned API; the bare data-route labels
/// count the deprecated unversioned aliases, so legacy traffic stays
/// separately visible during the migration.
pub const ROUTES: [&str; 19] = [
    "healthz",
    "metrics",
    "asn",
    "ip",
    "prefix",
    "country",
    "search",
    "dataset",
    "admin",
    "v1_asn",
    "v1_ip",
    "v1_prefix",
    "v1_country",
    "v1_search",
    "v1_dataset",
    "v1_history",
    "v1_risk",
    "v1_other",
    "other",
];

/// The deprecated unversioned data routes (subset of [`ROUTES`]) whose
/// traffic is summed into `requests_legacy`.
const LEGACY_DATA_ROUTES: [&str; 6] = ["asn", "ip", "prefix", "country", "search", "dataset"];

/// Upper bounds (microseconds) of the latency histogram buckets; one
/// overflow bucket sits above the last bound.
const BOUNDS_MICROS: [u64; 15] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000,
];

/// A fixed-bucket latency histogram, safe for concurrent recording.
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_MICROS.len() + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = BOUNDS_MICROS.iter().position(|&b| micros <= b).unwrap_or(BOUNDS_MICROS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q <= 1) as the upper bound of the bucket the
    /// quantile falls in, clamped to the largest observed value, in
    /// microseconds. Returns 0 when empty.
    ///
    /// The clamp keeps sparse histograms honest: a single 10µs sample must
    /// report p50 = 10µs, not the 50µs upper bound of the bucket it landed
    /// in. The overflow bucket reports the maximum by the same rule.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let max = self.max_micros.load(Ordering::Relaxed);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BOUNDS_MICROS.get(i).copied().unwrap_or(max).min(max);
            }
        }
        max
    }

    fn summary(&self) -> LatencySummary {
        let count = self.count();
        let sum = self.sum_micros.load(Ordering::Relaxed);
        LatencySummary {
            count,
            mean_micros: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50_micros: self.quantile_micros(0.50),
            p95_micros: self.quantile_micros(0.95),
            p99_micros: self.quantile_micros(0.99),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Serialized latency digest.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_micros: f64,
    /// Median.
    pub p50_micros: u64,
    /// 95th percentile.
    pub p95_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// Largest observation.
    pub max_micros: u64,
}

/// How the currently served index came to be: loaded from a snapshot or
/// rebuilt through the pipeline, with the rebuild's thread count and
/// per-stage timings when applicable. Logged at `soi serve` startup and
/// exported through `/metrics` so cold-start regressions are visible
/// without a profiler.
#[derive(Clone, Debug, Serialize)]
pub struct IndexProvenance {
    /// `"snapshot"` or `"pipeline"`.
    pub source: String,
    /// On-disk format the snapshot was detected in (`"v2"` or `"json"`);
    /// `None` for pipeline rebuilds.
    pub format: Option<String>,
    /// Worker threads the build used (0 when not applicable, e.g. a
    /// snapshot load).
    pub threads: usize,
    /// Per-stage pipeline timings for rebuilt indexes.
    pub timings: Option<StageTimings>,
}

/// What the server is currently serving: index sizes, reload generation,
/// and the provenance of the loaded snapshot (if any). Sampled at
/// `/metrics` time because a hot reload can change all of it.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ServiceStatus {
    /// Sizes of the currently served indexes.
    pub index: IndexSizes,
    /// Reload generation: 1 for the boot index, +1 per successful swap.
    pub generation: u64,
    /// Build metadata of the currently served snapshot, when the server
    /// was started from one.
    pub snapshot_build: Option<SnapshotBuildInfo>,
    /// Canonical checksum of the tracked payload the served index was
    /// built from — the base `POST /admin/delta` patches must name.
    /// `None` when no payload is tracked (deltas are refused).
    pub payload_checksum: Option<u64>,
    /// How the served index was built (snapshot load vs pipeline rebuild,
    /// thread count, stage timings).
    pub build: Option<IndexProvenance>,
}

/// All counters the server maintains.
pub struct Metrics {
    started: Instant,
    /// Requests fully served (any status).
    requests: AtomicU64,
    /// Responses with status >= 400.
    errors: AtomicU64,
    /// Connections refused with 503 because the accept queue was full.
    rejected: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    /// Reads that hit the per-request timeout.
    timeouts: AtomicU64,
    /// Requests currently being handled (gauge).
    in_flight: AtomicU64,
    /// Successful snapshot reloads (index swaps).
    reloads_ok: AtomicU64,
    /// Refused reloads (corrupt/mismatched snapshot; old index kept).
    reloads_failed: AtomicU64,
    /// Deltas applied through `POST /admin/delta`.
    deltas_applied: AtomicU64,
    /// Deltas refused (stale base, bad checksum, conflict; old index
    /// kept).
    deltas_rejected: AtomicU64,
    /// Patch records (org add/remove + mapping add/remove) applied across
    /// all accepted deltas.
    delta_records: AtomicU64,
    /// As-of (`?at=` / timeline) requests that reached the history layer.
    history_as_of: AtomicU64,
    /// As-of requests answered from the materialized-index LRU.
    history_cache_hits: AtomicU64,
    /// Delta segments replayed by history materializations.
    history_deltas_replayed: AtomicU64,
    /// Wall-clock microseconds spent materializing as-of views (resolve
    /// + index build, cache misses only).
    history_materialize_micros: AtomicU64,
    /// Requests that reached the risk layer (live or as-of).
    risk_requests: AtomicU64,
    /// Risk requests answered from a cached report.
    risk_cache_hits: AtomicU64,
    /// Risk reports computed (cache misses).
    risk_reports_computed: AtomicU64,
    /// Wall-clock microseconds spent computing risk reports.
    risk_compute_micros: AtomicU64,
    /// Requests answered from the serialized-response cache.
    respcache_hits: AtomicU64,
    /// Cacheable requests that missed the response cache.
    respcache_misses: AtomicU64,
    /// Response-cache entries evicted by the LRU policy.
    respcache_evictions: AtomicU64,
    /// Heavy-tier requests (search/risk/history) shed by admission
    /// control before dispatch.
    shed_heavy: AtomicU64,
    /// Light-tier requests (asn/ip/prefix/country/dataset) shed only
    /// when the dispatch queue is completely full.
    shed_light: AtomicU64,
    per_route: [AtomicU64; ROUTES.len()],
    latency: Histogram,
}

impl Metrics {
    /// Fresh metrics for a server.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_failed: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            deltas_rejected: AtomicU64::new(0),
            delta_records: AtomicU64::new(0),
            history_as_of: AtomicU64::new(0),
            history_cache_hits: AtomicU64::new(0),
            history_deltas_replayed: AtomicU64::new(0),
            history_materialize_micros: AtomicU64::new(0),
            risk_requests: AtomicU64::new(0),
            risk_cache_hits: AtomicU64::new(0),
            risk_reports_computed: AtomicU64::new(0),
            risk_compute_micros: AtomicU64::new(0),
            respcache_hits: AtomicU64::new(0),
            respcache_misses: AtomicU64::new(0),
            respcache_evictions: AtomicU64::new(0),
            shed_heavy: AtomicU64::new(0),
            shed_light: AtomicU64::new(0),
            per_route: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: Histogram::default(),
        }
    }

    /// Records one served request.
    pub fn record_request(&self, route: &str, status: u16, latency: Duration) {
        self.count_response(route, status);
        self.latency.record(latency);
    }

    /// Records one response produced *without* a measured service time —
    /// the parse-error paths (400/431/501), where no meaningful latency
    /// exists. Counts the request and the error but takes **no**
    /// histogram sample: recording `Duration::ZERO` for these used to
    /// drag p50/p95 toward zero under garbage traffic.
    pub fn record_request_unmeasured(&self, route: &str, status: u16) {
        self.count_response(route, status);
    }

    fn count_response(&self, route: &str, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let slot = ROUTES.iter().position(|&r| r == route).unwrap_or(ROUTES.len() - 1);
        self.per_route[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one backpressure rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request-read timeout.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successful snapshot reload.
    pub fn record_reload_ok(&self) {
        self.reloads_ok.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one refused reload (the old index kept serving).
    pub fn record_reload_failed(&self) {
        self.reloads_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one applied delta and the patch records it carried.
    pub fn record_delta_ok(&self, patch_records: usize) {
        self.deltas_applied.fetch_add(1, Ordering::Relaxed);
        self.delta_records.fetch_add(patch_records as u64, Ordering::Relaxed);
    }

    /// Counts one refused delta (the old index kept serving).
    pub fn record_delta_rejected(&self) {
        self.deltas_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one as-of request reaching the history layer.
    pub fn record_as_of(&self) {
        self.history_as_of.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one as-of request answered from the materialized LRU.
    pub fn record_as_of_cache_hit(&self) {
        self.history_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one as-of materialization: segments replayed and the
    /// wall-clock cost of resolve + index build.
    pub fn record_materialization(&self, deltas_replayed: usize, micros: u64) {
        self.history_deltas_replayed.fetch_add(deltas_replayed as u64, Ordering::Relaxed);
        self.history_materialize_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Counts one request reaching the risk layer.
    pub fn record_risk_request(&self) {
        self.risk_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one risk request answered from a cached report.
    pub fn record_risk_cache_hit(&self) {
        self.risk_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one computed risk report and its wall-clock cost.
    pub fn record_risk_computed(&self, micros: u64) {
        self.risk_reports_computed.fetch_add(1, Ordering::Relaxed);
        self.risk_compute_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Counts one request answered from the response cache.
    pub fn record_respcache_hit(&self) {
        self.respcache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one cacheable request that missed the response cache.
    pub fn record_respcache_miss(&self) {
        self.respcache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response-cache LRU eviction.
    pub fn record_respcache_eviction(&self) {
        self.respcache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by admission control. `heavy` names the
    /// tier: heavy routes (search/risk/history) shed at half queue
    /// depth, light data routes only when the queue is full.
    pub fn record_shed(&self, heavy: bool) {
        if heavy {
            self.shed_heavy.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shed_light.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks a request as in flight; decremented by [`Metrics::end_request`].
    pub fn begin_request(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Ends an in-flight request.
    pub fn end_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Total requests served so far.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Point-in-time view, serialized by `/metrics`. `status` describes
    /// what is being served right now (sizes, generation, snapshot
    /// provenance) — it lives outside `Metrics` because a hot reload can
    /// change it mid-flight.
    pub fn snapshot(&self, queue_depth: usize, status: &ServiceStatus) -> MetricsSnapshot {
        let per_route: BTreeMap<String, u64> = ROUTES
            .iter()
            .zip(self.per_route.iter())
            .map(|(&name, counter)| (name.to_owned(), counter.load(Ordering::Relaxed)))
            .collect();
        // The legacy/v1 split needs no extra atomics: it is a relabelling
        // of the per-route counters.
        let requests_legacy =
            LEGACY_DATA_ROUTES.iter().map(|&r| per_route.get(r).copied().unwrap_or(0)).sum();
        let requests_v1 =
            per_route.iter().filter(|(name, _)| name.starts_with("v1_")).map(|(_, &n)| n).sum();
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests_total: self.requests.load(Ordering::Relaxed),
            responses_error: self.errors.load(Ordering::Relaxed),
            rejected_backpressure: self.rejected.load(Ordering::Relaxed),
            connections_total: self.connections.load(Ordering::Relaxed),
            read_timeouts: self.timeouts.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            reloads_total: self.reloads_ok.load(Ordering::Relaxed),
            reload_failures: self.reloads_failed.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            deltas_rejected: self.deltas_rejected.load(Ordering::Relaxed),
            delta_records_applied: self.delta_records.load(Ordering::Relaxed),
            history_as_of_requests: self.history_as_of.load(Ordering::Relaxed),
            history_cache_hits: self.history_cache_hits.load(Ordering::Relaxed),
            history_deltas_replayed: self.history_deltas_replayed.load(Ordering::Relaxed),
            history_materialize_micros: self.history_materialize_micros.load(Ordering::Relaxed),
            risk_requests: self.risk_requests.load(Ordering::Relaxed),
            risk_cache_hits: self.risk_cache_hits.load(Ordering::Relaxed),
            risk_reports_computed: self.risk_reports_computed.load(Ordering::Relaxed),
            risk_compute_micros: self.risk_compute_micros.load(Ordering::Relaxed),
            respcache_hits: self.respcache_hits.load(Ordering::Relaxed),
            respcache_misses: self.respcache_misses.load(Ordering::Relaxed),
            respcache_evictions: self.respcache_evictions.load(Ordering::Relaxed),
            shed_heavy: self.shed_heavy.load(Ordering::Relaxed),
            shed_light: self.shed_light.load(Ordering::Relaxed),
            generation: status.generation,
            snapshot_build: status.snapshot_build.clone(),
            payload_checksum: status.payload_checksum,
            build: status.build.clone(),
            queue_depth,
            requests_legacy,
            requests_v1,
            per_route,
            latency: self.latency.summary(),
            index: status.index,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// The `/metrics` JSON document.
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Requests fully served.
    pub requests_total: u64,
    /// Responses with status >= 400.
    pub responses_error: u64,
    /// Connections 503'd by backpressure.
    pub rejected_backpressure: u64,
    /// Connections accepted.
    pub connections_total: u64,
    /// Request reads that timed out.
    pub read_timeouts: u64,
    /// Requests being handled right now.
    pub in_flight: u64,
    /// Successful snapshot reloads since boot.
    pub reloads_total: u64,
    /// Reload attempts refused (old index kept serving).
    pub reload_failures: u64,
    /// Deltas applied through `POST /admin/delta` since boot.
    pub deltas_applied: u64,
    /// Delta attempts refused (old index kept serving).
    pub deltas_rejected: u64,
    /// Patch records applied across all accepted deltas.
    pub delta_records_applied: u64,
    /// As-of requests (`?at=` and timeline) that reached the history
    /// layer since boot.
    pub history_as_of_requests: u64,
    /// As-of requests answered from the materialized-index LRU.
    pub history_cache_hits: u64,
    /// Delta segments replayed by history materializations.
    pub history_deltas_replayed: u64,
    /// Wall-clock microseconds spent materializing as-of views.
    pub history_materialize_micros: u64,
    /// Requests that reached the risk layer (live or as-of).
    pub risk_requests: u64,
    /// Risk requests answered from a cached report.
    pub risk_cache_hits: u64,
    /// Risk reports computed (cache misses).
    pub risk_reports_computed: u64,
    /// Wall-clock microseconds spent computing risk reports.
    pub risk_compute_micros: u64,
    /// Requests answered from the serialized-response cache.
    pub respcache_hits: u64,
    /// Cacheable requests that missed the response cache.
    pub respcache_misses: u64,
    /// Response-cache entries evicted by the LRU policy.
    pub respcache_evictions: u64,
    /// Heavy-tier requests (search/risk/history) shed by admission
    /// control.
    pub shed_heavy: u64,
    /// Light-tier requests shed because the dispatch queue was full.
    pub shed_light: u64,
    /// Current index generation (1 = boot index).
    pub generation: u64,
    /// Provenance of the served snapshot, when started from one.
    pub snapshot_build: Option<SnapshotBuildInfo>,
    /// Canonical checksum of the tracked served payload, if any — the
    /// base the next delta must name.
    pub payload_checksum: Option<u64>,
    /// How the served index was built (snapshot load vs pipeline rebuild,
    /// thread count, stage timings).
    pub build: Option<IndexProvenance>,
    /// Connections waiting in the accept queue right now.
    pub queue_depth: usize,
    /// Requests served by the deprecated unversioned data routes.
    pub requests_legacy: u64,
    /// Requests served by the `/v1` API (including `/v1` 404s/405s).
    pub requests_v1: u64,
    /// Requests per route.
    pub per_route: BTreeMap<String, u64>,
    /// Latency digest over all routes.
    pub latency: LatencySummary,
    /// Sizes of the served indexes.
    pub index: IndexSizes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::default();
        for micros in [40u64, 60, 200, 400, 800, 2_000, 4_000, 9_000, 20_000, 3_000_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // The 5th of ten observations (800us) sits in the 500..=1000
        // bucket, whose upper bound is reported.
        assert_eq!(h.quantile_micros(0.5), 1_000);
        // p99 lands in the overflow bucket -> max observed.
        assert_eq!(h.quantile_micros(0.99), 3_000_000);
        assert_eq!(h.quantile_micros(1.0), 3_000_000);
        let s = h.summary();
        assert!(s.mean_micros > 0.0);
        assert_eq!(s.max_micros, 3_000_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn single_sample_quantiles_clamp_to_the_observation() {
        // One 10µs sample lands in the ≤50µs bucket; every quantile must
        // report 10µs, not the bucket's upper bound.
        let h = Histogram::default();
        h.record(Duration::from_micros(10));
        assert_eq!(h.quantile_micros(0.5), 10);
        assert_eq!(h.quantile_micros(0.95), 10);
        assert_eq!(h.quantile_micros(0.99), 10);
        assert_eq!(h.quantile_micros(1.0), 10);
        assert_eq!(h.summary().max_micros, 10);
    }

    #[test]
    fn overflow_bucket_quantiles_report_the_observed_max() {
        // Everything beyond the last bound sits in the overflow bucket,
        // which has no upper bound — the observed max is the only honest
        // answer, even for the median.
        let h = Histogram::default();
        h.record(Duration::from_micros(5_000_000));
        h.record(Duration::from_micros(7_000_000));
        assert_eq!(h.quantile_micros(0.5), 7_000_000);
        assert_eq!(h.quantile_micros(0.99), 7_000_000);
    }

    #[test]
    fn quantile_clamp_does_not_disturb_populated_buckets() {
        // With a large max elsewhere, a mid-range quantile still reports
        // its own bucket's bound (the bound is below the max, so the clamp
        // is inert).
        let h = Histogram::default();
        for micros in [600u64, 700, 800, 3_000_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.quantile_micros(0.5), 1_000);
    }

    #[test]
    fn metrics_aggregate_requests_and_routes() {
        let m = Metrics::new();
        m.record_connection();
        m.begin_request();
        m.record_request("asn", 200, Duration::from_micros(120));
        m.end_request();
        m.record_request("asn", 200, Duration::from_micros(90));
        m.record_request("nonsense-route", 404, Duration::from_micros(30));
        m.record_rejected();
        let status = ServiceStatus { generation: 4, ..ServiceStatus::default() };
        let snap = m.snapshot(3, &status);
        assert_eq!(snap.requests_total, 3);
        assert_eq!(snap.responses_error, 1);
        assert_eq!(snap.rejected_backpressure, 1);
        assert_eq!(snap.connections_total, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.generation, 4);
        assert_eq!(snap.per_route["asn"], 2);
        assert_eq!(snap.per_route["other"], 1);
        assert_eq!(snap.latency.count, 3);
        assert!(snap.latency.p50_micros > 0);
    }

    #[test]
    fn legacy_and_v1_traffic_are_counted_separately() {
        let m = Metrics::new();
        m.record_request("asn", 200, Duration::from_micros(10));
        m.record_request("search", 200, Duration::from_micros(10));
        m.record_request("v1_asn", 200, Duration::from_micros(10));
        m.record_request("v1_search", 200, Duration::from_micros(10));
        m.record_request("v1_other", 404, Duration::from_micros(10));
        // Non-data routes count in neither bucket.
        m.record_request("healthz", 200, Duration::from_micros(10));
        m.record_request("admin", 200, Duration::from_micros(10));
        let snap = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(snap.requests_total, 7);
        assert_eq!(snap.requests_legacy, 2);
        assert_eq!(snap.requests_v1, 3);
        assert_eq!(snap.per_route["v1_asn"], 1);
        assert_eq!(snap.per_route["asn"], 1);
        // The provenance block passes through the status verbatim,
        // including the worldgen wall clock recorded by the caller that
        // generated the world.
        let status = ServiceStatus {
            build: Some(IndexProvenance {
                source: "pipeline".into(),
                format: None,
                threads: 4,
                timings: Some(StageTimings {
                    threads: 4,
                    worldgen_micros: 1_234,
                    ..StageTimings::default()
                }),
            }),
            ..ServiceStatus::default()
        };
        let snap = m.snapshot(0, &status);
        // /metrics is JSON-rendered; the field must survive serialization.
        let rendered = serde_json::to_string(&snap).expect("serialize");
        assert!(rendered.contains("\"worldgen_micros\":1234"));
        let build = snap.build.expect("provenance present");
        assert_eq!(build.source, "pipeline");
        assert_eq!(build.threads, 4);
        let timings = build.timings.expect("timings present");
        assert_eq!(timings.worldgen_micros, 1_234);
    }

    #[test]
    fn unmeasured_errors_count_without_polluting_the_histogram() {
        // Regression: parse-error responses (400/431/501) used to be
        // recorded with Duration::ZERO, dragging every quantile toward
        // zero under garbage traffic. They must count as requests and
        // errors but contribute no latency sample.
        let m = Metrics::new();
        for micros in [900u64, 1_000, 1_100, 950] {
            m.record_request("asn", 200, Duration::from_micros(micros));
        }
        let before = m.snapshot(0, &ServiceStatus::default());
        for _ in 0..100 {
            m.record_request_unmeasured("other", 400);
        }
        m.record_request_unmeasured("other", 431);
        m.record_request_unmeasured("other", 501);
        let after = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(after.requests_total, before.requests_total + 102);
        assert_eq!(after.responses_error, before.responses_error + 102);
        assert_eq!(after.per_route["other"], 102);
        // The histogram is untouched: same count, same quantiles.
        assert_eq!(after.latency.count, before.latency.count);
        assert_eq!(after.latency.p50_micros, before.latency.p50_micros);
        assert_eq!(after.latency.p95_micros, before.latency.p95_micros);
        assert!(after.latency.p50_micros >= 900, "quantiles reflect real samples only");
    }

    #[test]
    fn reload_counters_accumulate() {
        let m = Metrics::new();
        m.record_reload_ok();
        m.record_reload_ok();
        m.record_reload_failed();
        let snap = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(snap.reloads_total, 2);
        assert_eq!(snap.reload_failures, 1);
        assert!(snap.snapshot_build.is_none());
    }

    #[test]
    fn delta_counters_accumulate_applies_rejections_and_patch_sizes() {
        let m = Metrics::new();
        m.record_delta_ok(7);
        m.record_delta_ok(3);
        m.record_delta_rejected();
        let status =
            ServiceStatus { payload_checksum: Some(0xdead_beef), ..ServiceStatus::default() };
        let snap = m.snapshot(0, &status);
        assert_eq!(snap.deltas_applied, 2);
        assert_eq!(snap.deltas_rejected, 1);
        assert_eq!(snap.delta_records_applied, 10);
        assert_eq!(snap.payload_checksum, Some(0xdead_beef));
    }

    #[test]
    fn history_counters_accumulate_and_v1_history_is_a_route_label() {
        let m = Metrics::new();
        // Two as-of requests: a miss that replayed 3 segments in 250µs,
        // then a hit.
        m.record_as_of();
        m.record_materialization(3, 250);
        m.record_as_of();
        m.record_as_of_cache_hit();
        m.record_request("v1_history", 200, Duration::from_micros(40));
        let snap = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(snap.history_as_of_requests, 2);
        assert_eq!(snap.history_cache_hits, 1);
        assert_eq!(snap.history_deltas_replayed, 3);
        assert_eq!(snap.history_materialize_micros, 250);
        assert_eq!(snap.per_route["v1_history"], 1);
        // v1_history traffic counts toward the v1 bucket like every other
        // v1_* label.
        assert_eq!(snap.requests_v1, 1);
    }

    #[test]
    fn respcache_and_shed_counters_accumulate() {
        let m = Metrics::new();
        m.record_respcache_miss();
        m.record_respcache_hit();
        m.record_respcache_hit();
        m.record_respcache_eviction();
        m.record_shed(true);
        m.record_shed(true);
        m.record_shed(false);
        let snap = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(snap.respcache_hits, 2);
        assert_eq!(snap.respcache_misses, 1);
        assert_eq!(snap.respcache_evictions, 1);
        assert_eq!(snap.shed_heavy, 2);
        assert_eq!(snap.shed_light, 1);
        // The counters ride the JSON document analysts poll.
        let rendered = serde_json::to_string(&snap).expect("serialize");
        assert!(rendered.contains("\"respcache_hits\":2"));
        assert!(rendered.contains("\"shed_heavy\":2"));
    }

    #[test]
    fn risk_counters_accumulate_and_v1_risk_is_a_route_label() {
        let m = Metrics::new();
        // A miss that computed a report in 900µs, then a hit.
        m.record_risk_request();
        m.record_risk_computed(900);
        m.record_risk_request();
        m.record_risk_cache_hit();
        m.record_request("v1_risk", 200, Duration::from_micros(60));
        let snap = m.snapshot(0, &ServiceStatus::default());
        assert_eq!(snap.risk_requests, 2);
        assert_eq!(snap.risk_cache_hits, 1);
        assert_eq!(snap.risk_reports_computed, 1);
        assert_eq!(snap.risk_compute_micros, 900);
        assert_eq!(snap.per_route["v1_risk"], 1);
        assert_eq!(snap.requests_v1, 1);
    }
}
