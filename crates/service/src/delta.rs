//! The live write path: applying a [`DatasetDelta`] to the served index.
//!
//! `POST /admin/delta` ships a delta document to a running server; this
//! module validates it against the *tracked payload* — the exact dataset
//! and table the served index was built from, retained by the
//! [`IndexSlot`] — applies it off to the side, rebuilds the index, and
//! swaps both in atomically. The same discipline as snapshot reload
//! applies:
//!
//! * everything fallible (checksum validation, base matching, conflict
//!   detection, the apply itself, index construction) happens while the
//!   old index still serves — rollback by construction, never by
//!   restore;
//! * a delta naming a different base payload (stale generation — e.g.
//!   after an interleaved `/admin/reload`) is refused with a conflict,
//!   not applied loosely;
//! * reloads and delta applies share the slot's admin lock, so two
//!   writers never interleave their read-compute-swap sequences;
//! * accepted and refused deltas (and applied patch sizes) are counted
//!   in `/metrics`.

use std::sync::Arc;

use serde::Serialize;
use soi_core::SnapshotBuildInfo;
use soi_delta::{DatasetDelta, DeltaError};

use crate::index::{IndexSizes, ServiceIndex};
use crate::metrics::Metrics;
use crate::reload::IndexSlot;

/// Result of a successful delta application, returned by
/// `POST /admin/delta`.
#[derive(Clone, Debug, Serialize)]
pub struct DeltaOutcome {
    /// Generation now being served.
    pub generation: u64,
    /// Canonical checksum of the payload now served — the base the
    /// *next* delta in the chain must name.
    pub payload_checksum: u64,
    /// Organization records added by the patch.
    pub orgs_added: usize,
    /// Organization records removed by the patch.
    pub orgs_removed: usize,
    /// Prefix→origin mappings added by the patch.
    pub mappings_added: usize,
    /// Prefix→origin mappings removed by the patch.
    pub mappings_removed: usize,
    /// Sizes of the freshly built indexes.
    pub index: IndexSizes,
}

/// Why a delta was refused, with the HTTP status the handler should
/// answer with. The served index is untouched in every case.
#[derive(Clone, Debug)]
pub struct DeltaRejection {
    /// 400 for a bad document, 409 for a stale/conflicting base, 500 for
    /// internal failures.
    pub status: u16,
    /// Human-readable reason, returned as the error body.
    pub error: String,
}

/// Maps a refusal to the HTTP status class: document problems are the
/// client's (400), base problems are a conflict with the served state
/// (409), everything else is internal (500).
fn rejection_status(e: &DeltaError) -> u16 {
    match e {
        DeltaError::Malformed(_)
        | DeltaError::WrongMagic(_)
        | DeltaError::UnsupportedVersion { .. }
        | DeltaError::ChecksumMismatch { .. } => 400,
        DeltaError::BaseMismatch { .. } | DeltaError::Conflict(_) => 409,
        _ => 500,
    }
}

/// Validates `delta` against the slot's tracked payload, applies it,
/// rebuilds the index, and swaps index + payload in one generation bump.
/// Any failure leaves the slot untouched and is counted as a rejection.
pub fn apply_delta(
    slot: &IndexSlot,
    delta: &DatasetDelta,
    metrics: &Metrics,
) -> Result<DeltaOutcome, DeltaRejection> {
    let _guard = slot.admin_lock();
    let Some((base, _)) = slot.payload() else {
        metrics.record_delta_rejected();
        return Err(DeltaRejection {
            status: 409,
            error: "server is not serving a tracked payload; start from (or reload) a snapshot \
                    before applying deltas"
                .into(),
        });
    };
    match delta.apply(&base) {
        Ok(new_payload) => {
            let index =
                Arc::new(ServiceIndex::build(new_payload.dataset.clone(), &new_payload.table));
            let sizes = index.sizes();
            let checksum = delta.header.result_checksum;
            let build = SnapshotBuildInfo {
                tool: "soi-delta apply".into(),
                seed: delta.header.provenance.seed,
                organizations: new_payload.dataset.organizations.len(),
                announced_prefixes: new_payload.table.entries().len(),
                comment: format!(
                    "delta {} onto base {:016x}",
                    delta
                        .header
                        .provenance
                        .year
                        .map_or_else(|| "(no year)".to_owned(), |y| format!("year {y}")),
                    delta.header.base_checksum
                ),
            };
            let generation =
                slot.swap_full(index, Some(build), Some((Arc::new(new_payload), checksum)));
            metrics.record_delta_ok(delta.patch_size());
            Ok(DeltaOutcome {
                generation,
                payload_checksum: checksum,
                orgs_added: delta.payload.orgs_added.len(),
                orgs_removed: delta.payload.orgs_removed.len(),
                mappings_added: delta.payload.mappings_added.len(),
                mappings_removed: delta.payload.mappings_removed.len(),
                index: sizes,
            })
        }
        Err(e) => {
            metrics.record_delta_rejected();
            Err(DeltaRejection { status: rejection_status(&e), error: e.to_string() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_bgp::PrefixToAs;
    use soi_core::{payload_checksum, Dataset, OrgRecord, SnapshotPayload};
    use soi_delta::{DatasetDelta, EventBatch};
    use soi_types::{Asn, OrgId, Rir};

    fn record(name: &str, asns: &[u32]) -> OrgRecord {
        OrgRecord {
            conglomerate_name: name.to_owned(),
            org_id: Some(OrgId(1)),
            org_name: name.to_owned(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: asns.iter().map(|&a| Asn(a)).collect(),
        }
    }

    fn payload(orgs: &[(&str, u32)]) -> SnapshotPayload {
        let organizations = orgs.iter().map(|&(name, asn)| record(name, &[asn])).collect();
        let table = PrefixToAs::from_entries(
            orgs.iter()
                .enumerate()
                .map(|(i, &(_, asn))| (format!("10.{i}.0.0/16").parse().unwrap(), Asn(asn))),
        )
        .unwrap();
        let mut dataset = Dataset { organizations };
        dataset.canonicalize();
        SnapshotPayload { dataset, table }
    }

    fn delta_between(base: &SnapshotPayload, result: &SnapshotPayload) -> DatasetDelta {
        DatasetDelta::compute(
            base,
            result,
            EventBatch::default(),
            0,
            0,
            Vec::new(),
            soi_delta::DeltaProvenance {
                tool: "service-delta-test".into(),
                seed: Some(1),
                year: Some(0),
                comment: String::new(),
            },
        )
        .unwrap()
    }

    fn slot_with(payload: &SnapshotPayload) -> IndexSlot {
        let index = ServiceIndex::build(payload.dataset.clone(), &payload.table);
        let slot = IndexSlot::new(Arc::new(index), None);
        slot.attach_payload(Arc::new(payload.clone()), payload_checksum(payload).unwrap());
        slot
    }

    #[test]
    fn apply_swaps_index_and_advances_the_tracked_base() {
        let base = payload(&[("Telenor", 2119)]);
        let next = payload(&[("Telenor", 2119), ("PTCL", 17557)]);
        let delta = delta_between(&base, &next);
        let slot = slot_with(&base);
        let metrics = Metrics::new();

        assert!(!slot.load().lookup_asn(Asn(17557)).state_owned);
        let outcome = apply_delta(&slot, &delta, &metrics).expect("delta applies");
        assert_eq!(outcome.generation, 2);
        assert_eq!(outcome.orgs_added, 1);
        assert!(slot.load().lookup_asn(Asn(17557)).state_owned);
        // The tracked base moved to the delta's result, so the *same*
        // delta is now stale and refused with a conflict.
        let rejection = apply_delta(&slot, &delta, &metrics).expect_err("stale delta");
        assert_eq!(rejection.status, 409, "{}", rejection.error);
        assert!(rejection.error.contains("stale"), "{}", rejection.error);
        assert_eq!(slot.generation(), 2, "refusal leaves the swap count alone");
        assert!(slot.load().lookup_asn(Asn(17557)).state_owned);

        let snap = metrics.snapshot(0, &slot.status());
        assert_eq!(snap.deltas_applied, 1);
        assert_eq!(snap.deltas_rejected, 1);
        assert_eq!(snap.delta_records_applied as usize, delta.patch_size());
        assert_eq!(snap.payload_checksum, Some(outcome.payload_checksum));
    }

    #[test]
    fn untracked_slot_refuses_deltas() {
        let base = payload(&[("Telenor", 2119)]);
        let next = payload(&[("PTCL", 17557)]);
        let delta = delta_between(&base, &next);
        let index = ServiceIndex::build(base.dataset.clone(), &base.table);
        let slot = IndexSlot::new(Arc::new(index), None); // no attach_payload
        let metrics = Metrics::new();
        let rejection = apply_delta(&slot, &delta, &metrics).expect_err("no tracked payload");
        assert_eq!(rejection.status, 409);
        assert!(rejection.error.contains("tracked payload"), "{}", rejection.error);
        assert_eq!(metrics.snapshot(0, &slot.status()).deltas_rejected, 1);
    }
}
