//! Mapping an event batch to the minimal set of names whose confirmation
//! must be recomputed.
//!
//! Confirmation ([`soi_core::Confirmer`]) is a pure function of the
//! candidate's display name and the document chain reachable from it:
//! the documents filed under the name itself, plus — recursively through
//! holder names — the documents of every shareholder the resolver walks.
//! An outcome cached from the previous generation therefore stays valid
//! exactly when that whole chain is unchanged. The dirty set is the
//! complement, computed from three sources:
//!
//! 1. the names (old and new, brand and legal) of every company an
//!    ownership event touched;
//! 2. every normalized subject name whose document list changed between
//!    the two corpora — this is fingerprint-based rather than
//!    event-based because corpus generation threads one RNG across
//!    companies, so an event can perturb documents of companies far
//!    downstream of it;
//! 3. the fixpoint closure over subject→holder edges: a subject whose
//!    resolution chain passes through a dirty holder name re-confirms
//!    even if its own documents are untouched.
//!
//! Everything is keyed by *normalized* name, matching both the corpus
//! index and the pipeline's candidate bookkeeping.

use std::collections::{BTreeSet, HashMap, HashSet};

use soi_registry::as2org::normalize_org_name;
use soi_sources::DocumentCorpus;
use soi_types::{fnv1a64, CountryCode};
use soi_worldgen::World;

use crate::event::EventBatch;

/// Names and countries invalidated by an event batch.
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    /// Normalized names to evict from the confirmation cache.
    pub names: HashSet<String>,
    /// Countries owning an affected company in either generation — the
    /// delta's blast radius at country granularity.
    pub countries: BTreeSet<CountryCode>,
}

impl DirtySet {
    /// Number of dirty names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no name needs re-confirmation.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// FNV-1a fingerprint of each normalized subject name's document list.
/// Documents are hashed in corpus order, which generation fixes, so equal
/// fingerprints mean an identical document list.
fn doc_fingerprints(corpus: &DocumentCorpus) -> HashMap<String, u64> {
    let mut buffers: HashMap<String, Vec<u8>> = HashMap::new();
    for doc in corpus.documents() {
        let key = normalize_org_name(&doc.subject_name);
        if key.is_empty() {
            continue;
        }
        // Disclosures always serialize (plain data, no maps with
        // non-string keys).
        let bytes = serde_json::to_vec(doc).expect("disclosure serializes");
        let buf = buffers.entry(key).or_default();
        buf.extend_from_slice(&bytes);
        buf.push(0x1e); // record separator: no ambiguity across documents
    }
    buffers.into_iter().map(|(k, v)| (k, fnv1a64(&v))).collect()
}

/// Computes the dirty set for `batch` between two generations.
pub fn compute(
    batch: &EventBatch,
    base_world: &World,
    evolved_world: &World,
    base_corpus: &DocumentCorpus,
    evolved_corpus: &DocumentCorpus,
) -> DirtySet {
    let mut names: HashSet<String> = HashSet::new();
    let mut countries: BTreeSet<CountryCode> = BTreeSet::new();

    // 1. Names of companies touched by ownership events — in both
    // generations (a rebrand's old name lives only in the base world) and
    // under both the brand and the legal name (registry records carry
    // either).
    for company in batch.ownership_companies() {
        for world in [base_world, evolved_world] {
            if let Some(c) = world.ownership.company(company) {
                for name in [&c.name, &c.legal_name] {
                    let key = normalize_org_name(name);
                    if !key.is_empty() {
                        names.insert(key);
                    }
                }
                countries.insert(c.country);
            }
        }
    }

    // 2. Names whose document list changed.
    let old_docs = doc_fingerprints(base_corpus);
    let new_docs = doc_fingerprints(evolved_corpus);
    for (key, fingerprint) in &new_docs {
        if old_docs.get(key) != Some(fingerprint) {
            names.insert(key.clone());
        }
    }
    for key in old_docs.keys() {
        if !new_docs.contains_key(key) {
            names.insert(key.clone());
        }
    }

    // 3. Fixpoint over subject→holder edges from both corpora: dirt
    // propagates *up* the resolution chain (a subject is dirty if any
    // holder it resolves through is dirty).
    let mut edges: HashMap<String, HashSet<String>> = HashMap::new();
    for corpus in [base_corpus, evolved_corpus] {
        for doc in corpus.documents() {
            let subject = normalize_org_name(&doc.subject_name);
            if subject.is_empty() {
                continue;
            }
            let entry = edges.entry(subject).or_default();
            for (holder, _) in &doc.holders {
                let key = normalize_org_name(holder);
                if !key.is_empty() {
                    entry.insert(key);
                }
            }
        }
    }
    loop {
        let mut grew = false;
        for (subject, holders) in &edges {
            if !names.contains(subject) && holders.iter().any(|h| names.contains(h)) {
                names.insert(subject.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Country blast radius of the full (closed) dirty set.
    for world in [base_world, evolved_world] {
        for c in world.ownership.companies() {
            if names.contains(&normalize_org_name(&c.name)) {
                countries.insert(c.country);
            }
        }
    }

    DirtySet { names, countries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_core::{InputConfig, PipelineInputs};
    use soi_worldgen::{generate, ChurnConfig, WorldConfig};

    #[test]
    fn rebrands_dirty_both_old_and_new_names() {
        let world = generate(&WorldConfig::test_scale(151)).unwrap();
        let inputs = PipelineInputs::from_world(&world, &InputConfig::with_seed(151)).unwrap();
        let cfg = ChurnConfig {
            privatization_rate: 0.0,
            nationalization_rate: 0.0,
            acquisitions_per_year: 0.0,
            rebrand_rate: 0.2,
            seed: 13,
            hijacks_per_year: 0.0,
        };
        let (evolved, log) = cfg.evolve(&world, 0).unwrap();
        assert!(!log.rebranded.is_empty(), "rebrands expected at this rate");
        let refreshed =
            PipelineInputs::refresh_from_base(&evolved, &InputConfig::with_seed(151), &inputs)
                .unwrap();
        let batch = EventBatch::from_churn(0, &log, &world, &evolved);
        let dirty = compute(&batch, &world, &evolved, &inputs.corpus, &refreshed.corpus);
        for &company in &log.rebranded {
            let old_name = world.ownership.company(company).unwrap().name.clone();
            let new_name = evolved.ownership.company(company).unwrap().name.clone();
            assert!(dirty.names.contains(&normalize_org_name(&old_name)), "{old_name} not dirty");
            assert!(dirty.names.contains(&normalize_org_name(&new_name)), "{new_name} not dirty");
        }
        assert!(!dirty.countries.is_empty());
    }

    #[test]
    fn no_events_and_same_corpus_is_clean() {
        let world = generate(&WorldConfig::test_scale(152)).unwrap();
        let inputs = PipelineInputs::from_world(&world, &InputConfig::with_seed(152)).unwrap();
        let batch = EventBatch::default();
        let dirty = compute(&batch, &world, &world, &inputs.corpus, &inputs.corpus);
        assert!(dirty.is_empty(), "{} names dirty with no events", dirty.len());
    }
}
