//! The versioned, checksummed delta artifact and its apply/compaction
//! semantics.
//!
//! A [`DatasetDelta`] is to a [`Snapshot`] what a commit is to a tree: a
//! self-describing patch that upgrades one exact payload (identified by
//! its FNV-1a checksum) to one exact successor (also pinned by checksum).
//! The format mirrors `snapshot.rs`:
//!
//! * `header.magic` / `header.format_version` — identification and schema
//!   versioning with distinct, typed rejection errors;
//! * `header.checksum_fnv1a64` — integrity of the delta document itself;
//! * `header.base_checksum` — [`payload_checksum`] of the snapshot
//!   payload the delta applies to; apply refuses anything else
//!   ([`DeltaError::BaseMismatch`]), which is what makes a delta stale
//!   the moment a reload swaps in a different generation;
//! * `header.result_checksum` — checksum of the canonicalized post-apply
//!   payload; apply verifies it after patching
//!   ([`DeltaError::ResultMismatch`]), so a bad patch can never be
//!   served: like `reload.rs`, rollback is by construction — the base is
//!   never mutated, a fresh payload either verifies or is dropped.
//!
//! Organizations are patched as a multiset of exact records (a *changed*
//! org is one removal plus one addition); prefix mappings as exact
//! `(prefix, origin)` pairs. The applied dataset is
//! [`Dataset::canonicalize`]d, which is why chained deltas and a
//! from-scratch rebuild agree byte-for-byte modulo ordering.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};
use soi_bgp::PrefixToAs;
use soi_core::{
    payload_checksum, Dataset, OrgRecord, Snapshot, SnapshotBuildInfo, SnapshotPayload,
};
use soi_types::{fnv1a64, Asn, CountryCode, Ipv4Prefix, SoiError};

use crate::event::EventBatch;

/// Magic string identifying a delta document.
pub const DELTA_MAGIC: &str = "soi-delta";

/// Schema version written by this build; readers accept exactly this.
pub const DELTA_FORMAT_VERSION: u32 = 1;

/// Why a delta could not be loaded or applied.
#[derive(Debug)]
pub enum DeltaError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The bytes were not a well-formed delta document.
    Malformed(String),
    /// The document parsed but is not a delta (wrong magic).
    WrongMagic(String),
    /// The delta was written by an incompatible schema version.
    UnsupportedVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The delta payload does not hash to its header's checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed from the delta payload.
        computed: u64,
    },
    /// The delta was computed against a different base payload than the
    /// one it is being applied to (e.g. the server reloaded in between).
    BaseMismatch {
        /// Base checksum the delta expects.
        expected: u64,
        /// Checksum of the payload it was offered.
        found: u64,
    },
    /// The patched payload does not hash to the promised result.
    ResultMismatch {
        /// Result checksum the delta promises.
        expected: u64,
        /// Checksum of the payload apply produced.
        computed: u64,
    },
    /// The patch references state the base does not contain (removing an
    /// absent org/mapping, announcing an already-announced prefix).
    Conflict(String),
    /// Upstream computation failed while building a delta.
    Compute(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "delta I/O error: {e}"),
            DeltaError::Malformed(m) => write!(f, "malformed delta: {m}"),
            DeltaError::WrongMagic(m) => {
                write!(f, "not a delta document (magic {m:?}, expected {DELTA_MAGIC:?})")
            }
            DeltaError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported delta format version {found} (this build reads {supported})")
            }
            DeltaError::ChecksumMismatch { stored, computed } => write!(
                f,
                "delta checksum mismatch: header says {stored:016x}, payload hashes to {computed:016x}"
            ),
            DeltaError::BaseMismatch { expected, found } => write!(
                f,
                "delta base mismatch: patch applies to payload {expected:016x}, \
                 but the current payload is {found:016x} (stale generation?)"
            ),
            DeltaError::ResultMismatch { expected, computed } => write!(
                f,
                "delta result mismatch: patch promises payload {expected:016x}, \
                 apply produced {computed:016x}"
            ),
            DeltaError::Conflict(m) => write!(f, "delta conflict: {m}"),
            DeltaError::Compute(m) => write!(f, "delta computation failed: {m}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        DeltaError::Io(e)
    }
}

impl From<SoiError> for DeltaError {
    fn from(e: SoiError) -> Self {
        DeltaError::Compute(e.to_string())
    }
}

/// Provenance metadata carried in the delta header.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaProvenance {
    /// Tool that produced the delta (e.g. `soi delta make`).
    pub tool: String,
    /// World/input seed the generations derive from, when applicable.
    pub seed: Option<u64>,
    /// Churn year index the delta covers, when applicable.
    pub year: Option<u32>,
    /// Free-form note.
    pub comment: String,
}

/// Delta identification, versioning, integrity and chain linkage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaHeader {
    /// Always [`DELTA_MAGIC`].
    pub magic: String,
    /// Schema version, [`DELTA_FORMAT_VERSION`] for this build.
    pub format_version: u32,
    /// FNV-1a 64 of the delta payload's canonical JSON bytes.
    pub checksum_fnv1a64: u64,
    /// Checksum of the snapshot payload this delta applies to.
    pub base_checksum: u64,
    /// Checksum of the (canonicalized) payload apply must produce.
    pub result_checksum: u64,
    /// Build provenance.
    pub provenance: DeltaProvenance,
}

/// The patch itself plus the event/dirty-set summary that explains it.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DeltaPayload {
    /// The events that drove this delta.
    pub events: EventBatch,
    /// Organization records present only in the result (a changed org
    /// appears here with its new contents and in `orgs_removed` with its
    /// old contents).
    pub orgs_added: Vec<OrgRecord>,
    /// Organization records present only in the base.
    pub orgs_removed: Vec<OrgRecord>,
    /// Prefix→origin mappings present only in the result.
    pub mappings_added: Vec<(Ipv4Prefix, Asn)>,
    /// Prefix→origin mappings present only in the base.
    pub mappings_removed: Vec<(Ipv4Prefix, Asn)>,
    /// How many normalized names the engine re-confirmed.
    pub dirty_names: usize,
    /// How many cached confirmation outcomes were reused.
    pub reused_outcomes: usize,
    /// Countries in the blast radius of the event batch.
    pub dirty_countries: Vec<CountryCode>,
}

/// A complete delta document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetDelta {
    /// Identification, version, checksums, provenance.
    pub header: DeltaHeader,
    /// Patch + summary.
    pub payload: DeltaPayload,
}

/// Canonical checksum of a delta payload (compact JSON, FNV-1a 64).
fn delta_payload_checksum(payload: &DeltaPayload) -> Result<u64, DeltaError> {
    let bytes = serde_json::to_vec(payload)
        .map_err(|e| DeltaError::Malformed(format!("delta payload serialization failed: {e}")))?;
    Ok(fnv1a64(&bytes))
}

fn record_key(record: &OrgRecord) -> Result<String, DeltaError> {
    serde_json::to_string(record)
        .map_err(|e| DeltaError::Malformed(format!("org record serialization failed: {e}")))
}

impl DatasetDelta {
    /// Diffs `result` against `base` and wraps the patch in a checksummed
    /// header. `result`'s dataset is canonicalized internally, so the
    /// promised `result_checksum` always refers to canonical order;
    /// `base` is hashed exactly as given (it is whatever is currently
    /// being served).
    pub fn compute(
        base: &SnapshotPayload,
        result: &SnapshotPayload,
        events: EventBatch,
        dirty_names: usize,
        reused_outcomes: usize,
        dirty_countries: Vec<CountryCode>,
        provenance: DeltaProvenance,
    ) -> Result<DatasetDelta, DeltaError> {
        let mut canonical = result.clone();
        canonical.dataset.canonicalize();

        // Organization multiset diff by exact serialized record.
        let mut base_counts: HashMap<String, usize> = HashMap::new();
        for record in &base.dataset.organizations {
            *base_counts.entry(record_key(record)?).or_default() += 1;
        }
        let mut orgs_added = Vec::new();
        for record in &canonical.dataset.organizations {
            let key = record_key(record)?;
            match base_counts.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => orgs_added.push(record.clone()),
            }
        }
        let mut orgs_removed = Vec::new();
        for record in &base.dataset.organizations {
            let key = record_key(record)?;
            if let Some(n) = base_counts.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    orgs_removed.push(record.clone());
                }
            }
        }

        // Prefix-mapping diff by exact pair.
        let base_map: HashMap<Ipv4Prefix, Asn> = base.table.entries().iter().copied().collect();
        let result_map: HashMap<Ipv4Prefix, Asn> =
            canonical.table.entries().iter().copied().collect();
        let mappings_added: Vec<(Ipv4Prefix, Asn)> = canonical
            .table
            .entries()
            .iter()
            .copied()
            .filter(|(p, a)| base_map.get(p) != Some(a))
            .collect();
        let mappings_removed: Vec<(Ipv4Prefix, Asn)> = base
            .table
            .entries()
            .iter()
            .copied()
            .filter(|(p, a)| result_map.get(p) != Some(a))
            .collect();

        let payload = DeltaPayload {
            events,
            orgs_added,
            orgs_removed,
            mappings_added,
            mappings_removed,
            dirty_names,
            reused_outcomes,
            dirty_countries,
        };
        let header = DeltaHeader {
            magic: DELTA_MAGIC.to_owned(),
            format_version: DELTA_FORMAT_VERSION,
            checksum_fnv1a64: delta_payload_checksum(&payload)?,
            base_checksum: payload_checksum(base)?,
            result_checksum: payload_checksum(&canonical)?,
            provenance,
        };
        Ok(DatasetDelta { header, payload })
    }

    /// Checks magic, version and the delta's own checksum.
    pub fn validate(&self) -> Result<(), DeltaError> {
        if self.header.magic != DELTA_MAGIC {
            return Err(DeltaError::WrongMagic(self.header.magic.clone()));
        }
        if self.header.format_version != DELTA_FORMAT_VERSION {
            return Err(DeltaError::UnsupportedVersion {
                found: self.header.format_version,
                supported: DELTA_FORMAT_VERSION,
            });
        }
        let computed = delta_payload_checksum(&self.payload)?;
        if computed != self.header.checksum_fnv1a64 {
            return Err(DeltaError::ChecksumMismatch {
                stored: self.header.checksum_fnv1a64,
                computed,
            });
        }
        Ok(())
    }

    /// Applies the patch to `base`, returning the new payload. The base is
    /// never mutated: on any error — stale base, unknown record, origin
    /// collision, result checksum mismatch — the caller still holds the
    /// payload it started with (rollback by construction, as in
    /// `reload.rs`).
    pub fn apply(&self, base: &SnapshotPayload) -> Result<SnapshotPayload, DeltaError> {
        self.validate()?;
        let base_checksum = payload_checksum(base)?;
        if base_checksum != self.header.base_checksum {
            return Err(DeltaError::BaseMismatch {
                expected: self.header.base_checksum,
                found: base_checksum,
            });
        }

        // Organizations: drop removed records (exact match, multiset
        // aware), append added ones, restore canonical order.
        let mut to_remove: HashMap<String, usize> = HashMap::new();
        for record in &self.payload.orgs_removed {
            *to_remove.entry(record_key(record)?).or_default() += 1;
        }
        let mut organizations = Vec::with_capacity(
            base.dataset.organizations.len() + self.payload.orgs_added.len()
                - self.payload.orgs_removed.len().min(base.dataset.organizations.len()),
        );
        for record in &base.dataset.organizations {
            let key = record_key(record)?;
            match to_remove.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => organizations.push(record.clone()),
            }
        }
        if to_remove.values().any(|&n| n > 0) {
            return Err(DeltaError::Conflict(
                "delta removes an organization record the base does not contain".into(),
            ));
        }
        organizations.extend(self.payload.orgs_added.iter().cloned());
        let mut dataset = Dataset { organizations };
        dataset.canonicalize();

        // Prefix table: withdrawals must match exactly; additions must
        // not collide with a surviving announcement.
        let mut table: BTreeMap<Ipv4Prefix, Asn> = base.table.entries().iter().copied().collect();
        for &(prefix, origin) in &self.payload.mappings_removed {
            match table.get(&prefix) {
                Some(&current) if current == origin => {
                    table.remove(&prefix);
                }
                _ => {
                    return Err(DeltaError::Conflict(format!(
                        "delta withdraws {prefix} via {origin}, which the base does not announce"
                    )))
                }
            }
        }
        for &(prefix, origin) in &self.payload.mappings_added {
            if table.insert(prefix, origin).is_some() {
                return Err(DeltaError::Conflict(format!(
                    "delta announces {prefix} via {origin}, but the prefix is already announced"
                )));
            }
        }
        let table = PrefixToAs::from_entries(table)
            .map_err(|e| DeltaError::Conflict(format!("patched table is invalid: {e}")))?;

        let result = SnapshotPayload { dataset, table };
        let computed = payload_checksum(&result)?;
        if computed != self.header.result_checksum {
            return Err(DeltaError::ResultMismatch {
                expected: self.header.result_checksum,
                computed,
            });
        }
        Ok(result)
    }

    /// Total patched entries (org records + prefix mappings, both
    /// directions) — the `/metrics` patch-size unit.
    pub fn patch_size(&self) -> usize {
        self.payload.orgs_added.len()
            + self.payload.orgs_removed.len()
            + self.payload.mappings_added.len()
            + self.payload.mappings_removed.len()
    }

    /// Organizations present (by name) on both sides of the patch — i.e.
    /// *changed* rather than purely added or removed.
    pub fn orgs_changed(&self) -> usize {
        let removed: std::collections::HashSet<&str> =
            self.payload.orgs_removed.iter().map(|r| r.org_name.as_str()).collect();
        self.payload.orgs_added.iter().filter(|r| removed.contains(r.org_name.as_str())).count()
    }

    /// Serializes the full document (compact JSON).
    pub fn to_json(&self) -> Result<String, DeltaError> {
        serde_json::to_string(self)
            .map_err(|e| DeltaError::Malformed(format!("delta serialization failed: {e}")))
    }

    /// Parses *and validates* a delta document.
    pub fn from_json(s: &str) -> Result<DatasetDelta, DeltaError> {
        let delta: DatasetDelta =
            serde_json::from_str(s).map_err(|e| DeltaError::Malformed(e.to_string()))?;
        delta.validate()?;
        Ok(delta)
    }

    /// Writes the delta to `path` (temp file + rename, like snapshots).
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), DeltaError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a delta from `path`.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<DatasetDelta, DeltaError> {
        let text = std::fs::read_to_string(path)?;
        DatasetDelta::from_json(&text)
    }
}

/// Applies a delta chain in order, starting from `base`.
pub fn apply_chain<'a>(
    base: &SnapshotPayload,
    deltas: impl IntoIterator<Item = &'a DatasetDelta>,
) -> Result<SnapshotPayload, DeltaError> {
    let mut current = base.clone();
    for delta in deltas {
        current = delta.apply(&current)?;
    }
    Ok(current)
}

/// Folds a base snapshot plus an applied delta chain back into one full
/// snapshot — `soi snapshot compact`. The resulting snapshot carries the
/// final payload and fresh build metadata; its checksum equals the last
/// delta's `result_checksum` by construction.
pub fn compact(
    base: &Snapshot,
    deltas: &[DatasetDelta],
    build: SnapshotBuildInfo,
) -> Result<Snapshot, DeltaError> {
    base.validate().map_err(|e| DeltaError::Malformed(format!("base snapshot invalid: {e}")))?;
    let payload = apply_chain(&base.payload, deltas)?;
    Snapshot::build(payload.dataset, payload.table, build)
        .map_err(|e| DeltaError::Malformed(format!("compacted snapshot build failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_types::{OrgId, Rir};

    fn record(name: &str, asns: &[u32]) -> OrgRecord {
        OrgRecord {
            conglomerate_name: name.to_owned(),
            org_id: Some(OrgId(1)),
            org_name: name.to_owned(),
            ownership_cc: "NO".parse().unwrap(),
            ownership_country_name: "Norway".into(),
            rir: Some(Rir::Ripe),
            source: "Company's website".into(),
            quote: "Major shareholdings: Government (54%)".into(),
            quote_lang: "English".into(),
            url: "https://example.net".into(),
            additional_info: String::new(),
            inputs: vec!['G'],
            parent_org: None,
            target_cc: None,
            target_country_name: None,
            asns: asns.iter().map(|&a| Asn(a)).collect(),
        }
    }

    fn payload(orgs: Vec<OrgRecord>, entries: &[(&str, u32)]) -> SnapshotPayload {
        let table =
            PrefixToAs::from_entries(entries.iter().map(|&(p, a)| (p.parse().unwrap(), Asn(a))))
                .unwrap();
        SnapshotPayload { dataset: Dataset { organizations: orgs }, table }
    }

    fn delta_between(base: &SnapshotPayload, result: &SnapshotPayload) -> DatasetDelta {
        DatasetDelta::compute(
            base,
            result,
            EventBatch::default(),
            0,
            0,
            Vec::new(),
            DeltaProvenance { tool: "test".into(), ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn compute_apply_round_trips() {
        let base = payload(
            vec![record("Telenor", &[2119]), record("ARSAT", &[52361])],
            &[("10.0.0.0/8", 2119), ("11.0.0.0/8", 52361)],
        );
        let result = payload(
            // Telenor changed (new ASN), ARSAT gone, Ucell new; one
            // origin change and one fresh announcement.
            vec![record("Ucell", &[31203]), record("Telenor", &[2119, 8210])],
            &[("10.0.0.0/8", 8210), ("12.0.0.0/8", 31203)],
        );
        let delta = delta_between(&base, &result);
        assert_eq!(delta.payload.orgs_added.len(), 2);
        assert_eq!(delta.payload.orgs_removed.len(), 2);
        assert_eq!(delta.orgs_changed(), 1, "Telenor counts as changed");
        // Origin change = remove + add on the same prefix.
        assert_eq!(delta.payload.mappings_added.len(), 2);
        assert_eq!(delta.payload.mappings_removed.len(), 2);
        assert_eq!(delta.patch_size(), 8);

        let applied = delta.apply(&base).unwrap();
        let mut expected = result.clone();
        expected.dataset.canonicalize();
        assert_eq!(
            serde_json::to_string(&applied).unwrap(),
            serde_json::to_string(&expected).unwrap()
        );
        assert_eq!(payload_checksum(&applied).unwrap(), delta.header.result_checksum);
    }

    #[test]
    fn empty_diff_is_a_noop_patch() {
        let base = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let mut canonical = base.clone();
        canonical.dataset.canonicalize();
        let delta = delta_between(&base, &base);
        assert_eq!(delta.patch_size(), 0);
        let applied = delta.apply(&base).unwrap();
        assert_eq!(
            serde_json::to_string(&applied).unwrap(),
            serde_json::to_string(&canonical).unwrap()
        );
    }

    #[test]
    fn stale_base_is_rejected() {
        let base = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let result = payload(vec![record("Telenor", &[2119, 8210])], &[("10.0.0.0/8", 2119)]);
        let delta = delta_between(&base, &result);
        let other = payload(vec![record("Ucell", &[31203])], &[("10.0.0.0/8", 31203)]);
        assert!(matches!(delta.apply(&other), Err(DeltaError::BaseMismatch { .. })));
        // The intended base still applies.
        assert!(delta.apply(&base).is_ok());
    }

    #[test]
    fn tampered_payload_fails_own_checksum() {
        let base = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let result = payload(vec![record("Ucell", &[31203])], &[("10.0.0.0/8", 2119)]);
        let delta = delta_between(&base, &result);
        let tampered = delta.to_json().unwrap().replace("Ucell", "Evil");
        assert!(matches!(
            DatasetDelta::from_json(&tampered),
            Err(DeltaError::ChecksumMismatch { .. })
        ));
        // Wrong magic and version are distinct errors.
        let mut wrong = delta.clone();
        wrong.header.magic = "soi-snapshot".into();
        assert!(matches!(wrong.validate(), Err(DeltaError::WrongMagic(_))));
        let mut wrong = delta;
        wrong.header.format_version = 99;
        assert!(matches!(wrong.validate(), Err(DeltaError::UnsupportedVersion { found: 99, .. })));
    }

    #[test]
    fn conflicting_patches_roll_back() {
        let base = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let result = payload(vec![record("Telenor", &[2119])], &[("11.0.0.0/8", 2119)]);
        let delta = delta_between(&base, &result);
        // Hand-tamper the patch so it withdraws a mapping the base lacks,
        // recomputing the self-checksum so only the conflict fires.
        let mut broken = delta.clone();
        broken.payload.mappings_removed[0].0 = "99.0.0.0/8".parse().unwrap();
        broken.header.checksum_fnv1a64 = delta_payload_checksum(&broken.payload).unwrap();
        assert!(matches!(broken.apply(&base), Err(DeltaError::Conflict(_))));
        // A patch promising the wrong result is caught after patching.
        let mut lying = delta.clone();
        lying.header.result_checksum ^= 1;
        assert!(matches!(lying.apply(&base), Err(DeltaError::ResultMismatch { .. })));
    }

    #[test]
    fn chain_and_compaction_reach_the_final_payload() {
        let g0 = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let mut g1 = payload(
            vec![record("Telenor", &[2119]), record("Ucell", &[31203])],
            &[("10.0.0.0/8", 2119), ("11.0.0.0/8", 31203)],
        );
        g1.dataset.canonicalize();
        let mut g2 = payload(vec![record("Ucell", &[31203])], &[("11.0.0.0/8", 31203)]);
        g2.dataset.canonicalize();
        let d1 = delta_between(&g0, &g1);
        let d2 = delta_between(&g1, &g2);
        let finished = apply_chain(&g0, [&d1, &d2]).unwrap();
        assert_eq!(payload_checksum(&finished).unwrap(), d2.header.result_checksum);
        // Out-of-order application fails fast.
        assert!(matches!(apply_chain(&g0, [&d2, &d1]), Err(DeltaError::BaseMismatch { .. })));
        // Compaction produces a valid full snapshot of the final state.
        let base_snap = Snapshot::build(
            g0.dataset.clone(),
            g0.table.clone(),
            SnapshotBuildInfo { tool: "test".into(), ..Default::default() },
        )
        .unwrap();
        let compacted = compact(
            &base_snap,
            &[d1, d2],
            SnapshotBuildInfo { tool: "compact-test".into(), ..Default::default() },
        )
        .unwrap();
        compacted.validate().unwrap();
        assert_eq!(compacted.header.checksum_fnv1a64, payload_checksum(&finished).unwrap());
        assert_eq!(compacted.payload.dataset.organizations.len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let base = payload(vec![record("Telenor", &[2119])], &[("10.0.0.0/8", 2119)]);
        let result = payload(vec![record("Ucell", &[31203])], &[("10.0.0.0/8", 2119)]);
        let delta = delta_between(&base, &result);
        let path = std::env::temp_dir().join(format!("soi-delta-test-{}.json", std::process::id()));
        delta.write_to_file(&path).unwrap();
        let back = DatasetDelta::read_from_file(&path).unwrap();
        assert_eq!(back.header.result_checksum, delta.header.result_checksum);
        assert_eq!(back.patch_size(), delta.patch_size());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(DatasetDelta::read_from_file(&path), Err(DeltaError::Io(_))));
    }
}
