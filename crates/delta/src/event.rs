//! The event model: what changed in the world between two generations.
//!
//! Two event families feed the incremental engine:
//!
//! * **ownership events** — privatizations, nationalizations,
//!   conglomerate acquisitions and rebrands, lifted from
//!   [`soi_worldgen::ChurnLog`] and annotated with the company names the
//!   confirmation stage keys on;
//! * **BGP-level events** — prefix announcements, withdrawals and origin
//!   changes, derived by diffing the prefix→AS tables of two propagation
//!   runs after a topology/prefix perturbation.
//!
//! An [`EventBatch`] is the unit the engine maps to a dirty set and,
//! ultimately, to one [`crate::DatasetDelta`]. Batches serialize into the
//! delta artifact as provenance: a consumer can see *why* a delta exists,
//! not just what it patches.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use soi_bgp::PrefixToAs;
use soi_types::{Asn, CompanyId, Ipv4Prefix};
use soi_worldgen::{ChurnLog, World};

/// One observable change to the world between two generations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorldEvent {
    /// A majority-state operator's government stake fell below the line.
    Privatized {
        /// The company whose cap table changed.
        company: CompanyId,
        /// Its (current) commercial name.
        name: String,
    },
    /// A private/minority operator was taken past 50% by its government.
    Nationalized {
        /// The company whose cap table changed.
        company: CompanyId,
        /// Its (current) commercial name.
        name: String,
    },
    /// A state conglomerate bought majority control of a foreign operator.
    Acquired {
        /// The acquiring conglomerate.
        parent: CompanyId,
        /// Its commercial name.
        parent_name: String,
        /// The acquired operator.
        target: CompanyId,
        /// Its commercial name.
        target_name: String,
    },
    /// A company changed its commercial name.
    Rebranded {
        /// The company that rebranded.
        company: CompanyId,
        /// The brand before the event.
        old_name: String,
        /// The brand after the event.
        new_name: String,
    },
    /// A prefix appeared in the announced table.
    PrefixAnnounced {
        /// The newly-visible prefix.
        prefix: Ipv4Prefix,
        /// Its origin AS.
        origin: Asn,
    },
    /// A prefix disappeared from the announced table.
    PrefixWithdrawn {
        /// The withdrawn prefix.
        prefix: Ipv4Prefix,
        /// The origin that previously announced it.
        origin: Asn,
    },
    /// A prefix stayed announced but moved to a different origin AS.
    OriginChanged {
        /// The re-originated prefix.
        prefix: Ipv4Prefix,
        /// Origin before the event.
        from: Asn,
        /// Origin after the event.
        to: Asn,
    },
    /// An origin hijack: the prefix's *assignment* was seized by another
    /// AS in the worldgen substrate (tampering intent, lifted from churn).
    /// The observation-level effect shows up separately as an
    /// [`WorldEvent::OriginChanged`] once propagation is re-run; keeping
    /// both lets a consumer distinguish "we saw the origin move" from
    /// "the substrate says it was hijacked". A routing-substrate shift:
    /// the engine answers it with a full recompute, and risk analyses
    /// must treat cached reports over the old table as invalid.
    Hijacked {
        /// The seized prefix.
        prefix: Ipv4Prefix,
        /// The legitimate origin before the event.
        victim: Asn,
        /// The AS now originating the prefix.
        hijacker: Asn,
    },
}

impl WorldEvent {
    /// True for cap-table/name events (as opposed to BGP-level ones).
    pub fn is_ownership(&self) -> bool {
        matches!(
            self,
            WorldEvent::Privatized { .. }
                | WorldEvent::Nationalized { .. }
                | WorldEvent::Acquired { .. }
                | WorldEvent::Rebranded { .. }
        )
    }

    /// True for prefix-table events.
    pub fn is_bgp(&self) -> bool {
        !self.is_ownership()
    }

    /// Companies whose documentation trail this event touches.
    pub fn companies(&self) -> Vec<CompanyId> {
        match *self {
            WorldEvent::Privatized { company, .. }
            | WorldEvent::Nationalized { company, .. }
            | WorldEvent::Rebranded { company, .. } => vec![company],
            WorldEvent::Acquired { parent, target, .. } => vec![parent, target],
            _ => Vec::new(),
        }
    }
}

/// All events between one generation and the next.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventBatch {
    /// Churn year index the batch covers (0 = first step after the base).
    pub year: u32,
    /// The events, ownership first, BGP-level appended by
    /// [`EventBatch::push_bgp_diff`].
    pub events: Vec<WorldEvent>,
}

impl EventBatch {
    /// Lifts a churn log into events, resolving company names against the
    /// pre- and post-churn worlds (a rebrand's old name only exists in the
    /// former, its new name only in the latter).
    pub fn from_churn(year: u32, log: &ChurnLog, base: &World, evolved: &World) -> EventBatch {
        let name_in = |world: &World, id: CompanyId| {
            world.ownership.company(id).map(|c| c.name.clone()).unwrap_or_default()
        };
        let mut events = Vec::with_capacity(log.ownership_events() + log.rebranded.len());
        for &company in &log.privatized {
            events.push(WorldEvent::Privatized { company, name: name_in(evolved, company) });
        }
        for &company in &log.nationalized {
            events.push(WorldEvent::Nationalized { company, name: name_in(evolved, company) });
        }
        for &(parent, target) in &log.acquired {
            events.push(WorldEvent::Acquired {
                parent,
                parent_name: name_in(evolved, parent),
                target,
                target_name: name_in(evolved, target),
            });
        }
        for &company in &log.rebranded {
            events.push(WorldEvent::Rebranded {
                company,
                old_name: name_in(base, company),
                new_name: name_in(evolved, company),
            });
        }
        for &(prefix, victim, hijacker) in &log.hijacked {
            events.push(WorldEvent::Hijacked { prefix, victim, hijacker });
        }
        EventBatch { year, events }
    }

    /// Appends the BGP-level diff between two prefix→AS tables: prefixes
    /// only in `new` are announcements, prefixes only in `old` are
    /// withdrawals, and prefixes present in both with different origins
    /// are origin changes. Event order is deterministic (the tables'
    /// sorted entry order).
    pub fn push_bgp_diff(&mut self, old: &PrefixToAs, new: &PrefixToAs) {
        let old_map: HashMap<Ipv4Prefix, Asn> = old.entries().iter().copied().collect();
        let new_map: HashMap<Ipv4Prefix, Asn> = new.entries().iter().copied().collect();
        for &(prefix, origin) in new.entries() {
            match old_map.get(&prefix) {
                None => self.events.push(WorldEvent::PrefixAnnounced { prefix, origin }),
                Some(&prev) if prev != origin => {
                    self.events.push(WorldEvent::OriginChanged { prefix, from: prev, to: origin })
                }
                Some(_) => {}
            }
        }
        for &(prefix, origin) in old.entries() {
            if !new_map.contains_key(&prefix) {
                self.events.push(WorldEvent::PrefixWithdrawn { prefix, origin });
            }
        }
    }

    /// All companies named by ownership events, deduplicated.
    pub fn ownership_companies(&self) -> Vec<CompanyId> {
        let mut out: Vec<CompanyId> = self.events.iter().flat_map(|e| e.companies()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of ownership events in the batch.
    pub fn ownership_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_ownership()).count()
    }

    /// Number of BGP-level events in the batch.
    pub fn bgp_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_bgp()).count()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_worldgen::{generate, ChurnConfig, WorldConfig};

    #[test]
    fn churn_log_lifts_to_named_events() {
        let world = generate(&WorldConfig::test_scale(151)).unwrap();
        let cfg = ChurnConfig {
            privatization_rate: 0.3,
            nationalization_rate: 0.2,
            acquisitions_per_year: 5.0,
            rebrand_rate: 0.2,
            seed: 9,
            hijacks_per_year: 0.0,
        };
        let (evolved, log) = cfg.evolve(&world, 0).unwrap();
        let batch = EventBatch::from_churn(0, &log, &world, &evolved);
        assert_eq!(batch.ownership_count(), log.ownership_events() + log.rebranded.len());
        assert_eq!(batch.bgp_count(), 0);
        for event in &batch.events {
            assert!(event.is_ownership());
            match event {
                WorldEvent::Rebranded { old_name, new_name, .. } => {
                    assert_ne!(old_name, new_name);
                    assert!(!old_name.is_empty() && !new_name.is_empty());
                }
                WorldEvent::Privatized { name, .. } | WorldEvent::Nationalized { name, .. } => {
                    assert!(!name.is_empty());
                }
                WorldEvent::Acquired { parent_name, target_name, .. } => {
                    assert!(!parent_name.is_empty() && !target_name.is_empty());
                }
                _ => unreachable!(),
            }
        }
        // Companies touched by events are reported exactly once each.
        let companies = batch.ownership_companies();
        let mut dedup = companies.clone();
        dedup.dedup();
        assert_eq!(companies, dedup);
    }

    #[test]
    fn hijacks_lift_to_bgp_level_events() {
        let world = generate(&WorldConfig::test_scale(151)).unwrap();
        let cfg = ChurnConfig { hijacks_per_year: 6.0, seed: 17, ..ChurnConfig::default() };
        let (evolved, log) = cfg.evolve(&world, 0).unwrap();
        assert!(!log.hijacked.is_empty(), "rate 6.0 should fire at least once");
        let batch = EventBatch::from_churn(0, &log, &world, &evolved);
        let hijacks: Vec<&WorldEvent> =
            batch.events.iter().filter(|e| matches!(e, WorldEvent::Hijacked { .. })).collect();
        assert_eq!(hijacks.len(), log.hijacked.len());
        for event in &hijacks {
            // Substrate events: BGP-side, no company documentation trail.
            assert!(event.is_bgp());
            assert!(event.companies().is_empty());
        }
        assert_eq!(batch.bgp_count(), hijacks.len());
    }

    #[test]
    fn bgp_diff_detects_all_three_event_kinds() {
        let p = |s: &str| -> Ipv4Prefix { s.parse().unwrap() };
        let old = PrefixToAs::from_entries([
            (p("10.0.0.0/8"), Asn(1)),
            (p("11.0.0.0/8"), Asn(2)),
            (p("12.0.0.0/8"), Asn(3)),
        ])
        .unwrap();
        let new = PrefixToAs::from_entries([
            (p("10.0.0.0/8"), Asn(1)), // unchanged
            (p("11.0.0.0/8"), Asn(9)), // origin change
            (p("13.0.0.0/8"), Asn(4)), // announced
        ])
        .unwrap();
        let mut batch = EventBatch { year: 0, events: Vec::new() };
        batch.push_bgp_diff(&old, &new);
        assert_eq!(batch.bgp_count(), 3);
        assert!(batch.events.contains(&WorldEvent::OriginChanged {
            prefix: p("11.0.0.0/8"),
            from: Asn(2),
            to: Asn(9)
        }));
        assert!(batch
            .events
            .contains(&WorldEvent::PrefixAnnounced { prefix: p("13.0.0.0/8"), origin: Asn(4) }));
        assert!(batch
            .events
            .contains(&WorldEvent::PrefixWithdrawn { prefix: p("12.0.0.0/8"), origin: Asn(3) }));
        // Identical tables produce no events.
        let mut quiet = EventBatch::default();
        quiet.push_bgp_diff(&old, &old);
        assert!(quiet.is_empty());
    }
}
