//! The incremental recompute engine: events in, deltas out.
//!
//! A [`DeltaEngine`] holds one fully-materialized [`Generation`] (world,
//! derived inputs, pipeline output, serving payload) and advances it one
//! event batch at a time. Each step:
//!
//! 1. evolves the world (ownership churn via the configured
//!    [`ChurnConfig`], or an arbitrary caller-perturbed world through
//!    [`DeltaEngine::step_to_world`]);
//! 2. re-derives inputs — *reusing* the expensive technical products
//!    (BGP propagation, prefix→AS table, geolocation, eyeballs, CTI)
//!    when the substrate is untouched, which is exactly what churn
//!    guarantees, and recomputing them (emitting BGP-level events from
//!    the table diff) when it is not;
//! 3. computes the dirty name set ([`crate::dirty`]) and re-runs
//!    candidate selection + confirmation only for it, feeding every
//!    other name's outcome from the previous generation's cache
//!    ([`Pipeline::run_cached`]);
//! 4. diffs the resulting payload against the current one into a
//!    checksummed [`DatasetDelta`] and makes the new generation current.
//!
//! The correctness oracle (asserted in `tests/delta.rs`): applying the
//! emitted delta chain to the base payload yields a dataset
//! byte-identical — modulo canonical ordering — to a from-scratch
//! pipeline run on the evolved world.

use soi_core::{
    InputConfig, Pipeline, PipelineConfig, PipelineInputs, PipelineOutput, SnapshotPayload,
};
use soi_worldgen::{ChurnConfig, World};

use crate::delta::{DatasetDelta, DeltaError, DeltaProvenance};
use crate::dirty;
use crate::event::EventBatch;

/// Everything a delta stream derivation is parameterized by.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Input derivation (noise models, monitors, master seed).
    pub input: InputConfig,
    /// Pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Annual churn rates + seed.
    pub churn: ChurnConfig,
    /// Worker threads for pipeline runs (base builds and full rebuilds
    /// after substrate shifts). `0` means one per available core; any
    /// value produces byte-identical generations and deltas
    /// ([`Pipeline::run_parallel`]'s determinism contract).
    pub threads: usize,
}

impl EngineConfig {
    /// Paper-default pipeline and churn rates, all seeded from `seed`.
    pub fn with_seed(seed: u64) -> EngineConfig {
        EngineConfig {
            input: InputConfig::with_seed(seed),
            pipeline: PipelineConfig::default(),
            churn: ChurnConfig { seed, ..ChurnConfig::default() },
            threads: 0,
        }
    }

    /// The resolved worker-thread count (`threads`, with `0` mapped to
    /// the available parallelism).
    pub fn resolved_threads(&self) -> usize {
        soi_core::resolve_threads(self.threads)
    }
}

/// One fully-materialized generation of the system.
pub struct Generation {
    /// The world this generation describes.
    pub world: World,
    /// Inputs derived from it.
    pub inputs: PipelineInputs,
    /// The pipeline run over those inputs (incl. the confirmation cache).
    pub output: PipelineOutput,
    /// The serving payload: dataset + announced table. For a base
    /// generation this is exactly what `soi snapshot write` persists
    /// (pipeline record order); for stepped generations it is canonical
    /// order, matching what applying the step's delta produces.
    pub payload: SnapshotPayload,
}

impl Generation {
    /// Runs the full pipeline on `world` — the expensive, from-scratch
    /// path every delta chain starts from.
    pub fn base(world: World, cfg: &EngineConfig) -> Result<Generation, DeltaError> {
        let threads = cfg.resolved_threads();
        let input_cfg = InputConfig { threads, ..cfg.input };
        let inputs = PipelineInputs::from_world(&world, &input_cfg)?;
        let output = Pipeline::run_parallel(&inputs, &cfg.pipeline, threads);
        Ok(Generation::from_parts(world, inputs, output))
    }

    /// Wraps an already-computed run (e.g. a shared test fixture) as a
    /// generation without re-running anything.
    pub fn from_parts(world: World, inputs: PipelineInputs, output: PipelineOutput) -> Generation {
        let payload =
            SnapshotPayload { dataset: output.dataset.clone(), table: inputs.prefix_to_as.clone() };
        Generation { world, inputs, output, payload }
    }
}

/// Per-step accounting: how much work the incremental path avoided.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Events in the batch that drove the step.
    pub events: usize,
    /// Normalized names evicted and re-confirmed.
    pub dirty_names: usize,
    /// Cached confirmation outcomes carried over.
    pub reused_outcomes: usize,
    /// Total names confirmed in the new generation (cached + fresh).
    pub total_names: usize,
    /// Whether the technical substrate changed (forcing full BGP/geo/CTI
    /// recomputation and BGP-level events).
    pub substrate_changed: bool,
}

/// What one engine step yields: the patch and its accounting.
pub struct EngineStep {
    /// The delta upgrading the previous generation's payload to the new
    /// one.
    pub delta: DatasetDelta,
    /// Work accounting.
    pub stats: StepStats,
}

/// The incremental recompute engine.
pub struct DeltaEngine {
    cfg: EngineConfig,
    current: Generation,
    year: u32,
}

impl DeltaEngine {
    /// Boots an engine by running the full pipeline on `world`.
    pub fn new(world: World, cfg: EngineConfig) -> Result<DeltaEngine, DeltaError> {
        let current = Generation::base(world, &cfg)?;
        Ok(DeltaEngine::from_generation(current, cfg))
    }

    /// Boots an engine from an existing generation (no recompute).
    pub fn from_generation(current: Generation, cfg: EngineConfig) -> DeltaEngine {
        DeltaEngine { cfg, current, year: 0 }
    }

    /// The generation currently held (what a server would be serving).
    pub fn current(&self) -> &Generation {
        &self.current
    }

    /// The next churn year index [`DeltaEngine::step`] will run.
    pub fn year(&self) -> u32 {
        self.year
    }

    /// Advances one year of ownership churn and emits the delta.
    pub fn step(&mut self) -> Result<EngineStep, DeltaError> {
        let year = self.year;
        let (evolved, log) = self.cfg.churn.evolve(&self.current.world, year)?;
        let events = EventBatch::from_churn(year, &log, &self.current.world, &evolved);
        let step = self.step_to_world(evolved, events)?;
        self.year = year + 1;
        Ok(step)
    }

    /// Advances to an arbitrary evolved world — the entry point for
    /// substrate perturbations (prefix/topology changes) as well as the
    /// churn path above. `events` should carry the ownership events that
    /// explain the transition; BGP-level events are appended here when
    /// the substrate differs.
    pub fn step_to_world(
        &mut self,
        world: World,
        mut events: EventBatch,
    ) -> Result<EngineStep, DeltaError> {
        let substrate_unchanged = world.prefix_assignments == self.current.world.prefix_assignments
            && world.topology.num_links() == self.current.world.topology.num_links()
            && world.users == self.current.world.users
            && world.geo_blocks == self.current.world.geo_blocks;

        let threads = self.cfg.resolved_threads();
        let input_cfg = InputConfig { threads, ..self.cfg.input };
        let inputs = if substrate_unchanged {
            PipelineInputs::refresh_from_base(&world, &input_cfg, &self.current.inputs)?
        } else {
            // Substrate shift: the full rebuild fans out like a base build.
            PipelineInputs::from_world(&world, &input_cfg)?
        };
        if !substrate_unchanged {
            events.push_bgp_diff(&self.current.inputs.prefix_to_as, &inputs.prefix_to_as);
        }

        // Evict the dirty names; everything else confirms from cache.
        let dirty_set = dirty::compute(
            &events,
            &self.current.world,
            &world,
            &self.current.inputs.corpus,
            &inputs.corpus,
        );
        let mut cache = self.current.output.confirm_outcomes.clone();
        cache.evict_all(&dirty_set.names);
        let reused_outcomes = cache.len();
        let output = Pipeline::run_cached_parallel(&inputs, &self.cfg.pipeline, &cache, threads);

        let mut dataset = output.dataset.clone();
        dataset.canonicalize();
        let payload = SnapshotPayload { dataset, table: inputs.prefix_to_as.clone() };

        let stats = StepStats {
            events: events.len(),
            dirty_names: dirty_set.len(),
            reused_outcomes,
            total_names: output.confirm_outcomes.len(),
            substrate_changed: !substrate_unchanged,
        };
        let provenance = DeltaProvenance {
            tool: "soi-delta engine".into(),
            seed: Some(self.cfg.input.seed),
            year: Some(events.year),
            comment: format!(
                "{} events, {} dirty names, {} outcomes reused",
                stats.events, stats.dirty_names, stats.reused_outcomes
            ),
        };
        let delta = DatasetDelta::compute(
            &self.current.payload,
            &payload,
            events,
            stats.dirty_names,
            stats.reused_outcomes,
            dirty_set.countries.iter().copied().collect(),
            provenance,
        )?;

        self.current = Generation { world, inputs, output, payload };
        Ok(EngineStep { delta, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_core::payload_checksum;
    use soi_worldgen::{generate, WorldConfig};

    #[test]
    fn step_emits_a_delta_that_upgrades_the_previous_payload() {
        let world = generate(&WorldConfig::test_scale(777)).unwrap();
        let mut cfg = EngineConfig::with_seed(777);
        // Rates high enough that a single year produces events.
        cfg.churn.privatization_rate = 0.2;
        cfg.churn.nationalization_rate = 0.1;
        cfg.churn.rebrand_rate = 0.1;
        let mut engine = DeltaEngine::new(world, cfg).unwrap();
        let before = engine.current().payload.clone();
        let step = engine.step().unwrap();
        assert!(step.stats.events > 0, "no events at exaggerated rates");
        assert!(!step.stats.substrate_changed, "churn must preserve the substrate");
        assert!(step.stats.reused_outcomes > 0, "incremental step reused no cached outcomes");
        assert!(step.stats.reused_outcomes + step.stats.dirty_names >= step.stats.total_names / 2);
        // The delta upgrades exactly the payload the engine held before.
        let applied = step.delta.apply(&before).unwrap();
        assert_eq!(
            payload_checksum(&applied).unwrap(),
            payload_checksum(&engine.current().payload).unwrap()
        );
        assert_eq!(engine.year(), 1);
    }

    #[test]
    fn hijacks_force_a_substrate_recompute_and_still_emit_a_valid_delta() {
        let world = generate(&WorldConfig::test_scale(777)).unwrap();
        let mut cfg = EngineConfig::with_seed(777);
        cfg.churn.hijacks_per_year = 6.0;
        let mut engine = DeltaEngine::new(world, cfg).unwrap();
        let before = engine.current().payload.clone();
        let step = engine.step().unwrap();
        let hijacks = step
            .delta
            .payload
            .events
            .events
            .iter()
            .filter(|e| matches!(e, crate::WorldEvent::Hijacked { .. }))
            .count();
        assert!(hijacks > 0, "rate 6.0 should fire at least once");
        assert!(
            step.stats.substrate_changed,
            "a moved prefix assignment is a routing-substrate shift"
        );
        // The full-rebuild path still produces a chain-valid delta.
        let applied = step.delta.apply(&before).unwrap();
        assert_eq!(
            payload_checksum(&applied).unwrap(),
            payload_checksum(&engine.current().payload).unwrap()
        );
    }
}
