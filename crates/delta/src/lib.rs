//! Incremental dataset updates for the state-owned-AS system.
//!
//! The paper's dataset describes one reference timeframe, but ownership
//! is dynamic (§2, §9): operators privatize, nationalize, get acquired
//! and rebrand, and the BGP substrate underneath them shifts. This crate
//! makes the system *incrementally updatable* end-to-end instead of
//! forcing a full pipeline rebuild per refresh:
//!
//! * [`event`] — the [`WorldEvent`]/[`EventBatch`] model: ownership
//!   churn lifted from `worldgen::churn`, plus BGP-level events derived
//!   by diffing prefix→AS tables after substrate perturbations;
//! * [`dirty`] — maps an event batch to the minimal set of names whose
//!   confirmation must re-run (event names ∪ changed-document names,
//!   closed over holder-resolution edges);
//! * [`engine`] — the [`DeltaEngine`]: re-derives only
//!   ownership-sensitive inputs, re-confirms only the dirty set (cached
//!   outcomes feed [`soi_core::Pipeline::run_cached`]), and emits a
//!   [`DatasetDelta`] per step;
//! * [`delta`] — the versioned, checksummed [`DatasetDelta`] artifact:
//!   orgs added/removed/changed, mappings added/removed, provenance and
//!   the exact base payload (by checksum) it applies to, plus
//!   [`apply_chain`] and [`compact`] for folding a chain back into a
//!   full snapshot.
//!
//! `soi-service` consumes deltas via `POST /admin/delta`; the CLI drives
//! the loop with `soi delta make` and `soi snapshot compact`. The
//! correctness oracle — delta chain ≡ full rebuild, modulo canonical
//! ordering — is asserted in `tests/delta.rs` and measured in the
//! `delta` criterion bench.

pub mod delta;
pub mod dirty;
pub mod engine;
pub mod event;

pub use delta::{
    apply_chain, compact, DatasetDelta, DeltaError, DeltaHeader, DeltaPayload, DeltaProvenance,
    DELTA_FORMAT_VERSION, DELTA_MAGIC,
};
pub use dirty::DirtySet;
pub use engine::{DeltaEngine, EngineConfig, EngineStep, Generation, StepStats};
pub use event::{EventBatch, WorldEvent};
