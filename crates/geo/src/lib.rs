//! Country-level IP geolocation (NetAcuity-style database simulator).
//!
//! The candidate-selection stage geolocates *every address of every routed
//! prefix* to a country and keeps origin ASes whose footprint exceeds 5% of
//! a country's address space (§4.1). The paper relies on a commercial
//! database (Digital Element NetAcuity) whose country-level accuracy prior
//! work places between 74% and 98%. This crate provides:
//!
//! * [`GeoDb`] — an immutable map from disjoint IPv4 blocks to countries
//!   with longest-prefix lookups and fast per-range address counting; and
//! * [`GeoNoise`] — a seeded perturbation that mislocates a configurable
//!   fraction of blocks, so the pipeline can be evaluated under realistic
//!   database error (one of the ablations in the bench suite).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use soi_types::{all_countries, AddressCount, CountryCode, Ipv4Prefix, PrefixTrie, SoiError};

/// A geolocation database: disjoint IPv4 blocks, each assigned to one
/// country.
#[derive(Clone, Debug)]
pub struct GeoDb {
    /// Disjoint blocks sorted by network address.
    blocks: Vec<(Ipv4Prefix, CountryCode)>,
    trie: PrefixTrie<CountryCode>,
}

impl GeoDb {
    /// Builds a database from blocks, validating that they are disjoint
    /// (overlapping country assignments would make address counts
    /// ambiguous).
    pub fn from_blocks(
        blocks: impl IntoIterator<Item = (Ipv4Prefix, CountryCode)>,
    ) -> Result<GeoDb, SoiError> {
        let mut blocks: Vec<(Ipv4Prefix, CountryCode)> = blocks.into_iter().collect();
        blocks.sort_unstable();
        for w in blocks.windows(2) {
            if w[0].0.overlaps(w[1].0) {
                return Err(SoiError::Invariant(format!(
                    "overlapping geolocation blocks {} and {}",
                    w[0].0, w[1].0
                )));
            }
        }
        let trie = blocks.iter().map(|&(p, c)| (p, c)).collect();
        Ok(GeoDb { blocks, trie })
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All blocks in address order.
    pub fn blocks(&self) -> &[(Ipv4Prefix, CountryCode)] {
        &self.blocks
    }

    /// Country of a single address.
    pub fn country_of_ip(&self, ip: u32) -> Option<CountryCode> {
        self.trie.lookup(ip).map(|(_, &c)| c)
    }

    /// Counts, per country, the addresses of `prefix` that geolocate there.
    ///
    /// Runs in O(log B + K) where K is the number of blocks overlapping the
    /// prefix — the candidate stage calls this for every routed prefix, so
    /// a linear scan would dominate the pipeline.
    pub fn count_by_country(&self, prefix: Ipv4Prefix) -> HashMap<CountryCode, AddressCount> {
        let mut out = HashMap::new();
        self.accumulate(prefix, &mut out);
        out
    }

    /// Like [`GeoDb::count_by_country`], summed over several (disjoint)
    /// prefixes — used with `PrefixToAs::uncovered_subprefixes` output to
    /// honour more-specific carve-outs.
    pub fn count_by_country_multi(
        &self,
        prefixes: &[Ipv4Prefix],
    ) -> HashMap<CountryCode, AddressCount> {
        let mut out = HashMap::new();
        for &p in prefixes {
            self.accumulate(p, &mut out);
        }
        out
    }

    fn accumulate(&self, prefix: Ipv4Prefix, out: &mut HashMap<CountryCode, AddressCount>) {
        let (q_start, q_end) =
            (prefix.network() as u64, prefix.network() as u64 + prefix.num_addresses());
        // First block whose *end* is after the query start.
        let mut i = self
            .blocks
            .partition_point(|(b, _)| (b.network() as u64 + b.num_addresses()) <= q_start);
        while i < self.blocks.len() {
            let (b, country) = self.blocks[i];
            let b_start = b.network() as u64;
            if b_start >= q_end {
                break;
            }
            let b_end = b_start + b.num_addresses();
            let overlap = b_end.min(q_end) - b_start.max(q_start);
            *out.entry(country).or_default() += overlap;
            i += 1;
        }
    }

    /// Total addresses attributed to each country across the whole
    /// database.
    pub fn totals(&self) -> HashMap<CountryCode, AddressCount> {
        let mut out = HashMap::new();
        for &(p, c) in &self.blocks {
            *out.entry(c).or_default() += p.num_addresses();
        }
        out
    }
}

/// Seeded country-level error model for a [`GeoDb`].
///
/// With probability `1 - accuracy`, a block's country is replaced by a
/// different one, drawn either from a neighbour-ish pool (same region) or
/// uniformly — mirroring how commercial databases typically confuse
/// neighbouring countries rather than arbitrary ones.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GeoNoise {
    /// Fraction of blocks geolocated correctly, in `[0, 1]`. Prior work
    /// measured NetAcuity country-level accuracy at 0.74-0.98.
    pub accuracy: f64,
    /// Of the *erroneous* blocks, fraction confused within the same region
    /// (the rest go to a uniformly random country).
    pub regional_confusion: f64,
    /// Only blocks at least this specific (prefix length >= this value)
    /// are subject to error. Databases do not mislocate an incumbent's
    /// /12 — country-level errors live in small, ambiguous allocations —
    /// so the *address-weighted* accuracy is much higher than the
    /// block-count accuracy.
    pub min_error_len: u8,
    /// RNG seed; same seed, same perturbation.
    pub seed: u64,
}

impl Default for GeoNoise {
    fn default() -> Self {
        GeoNoise { accuracy: 0.9, regional_confusion: 0.7, min_error_len: 18, seed: 0 }
    }
}

impl GeoNoise {
    /// Applies the noise model, producing a perturbed database.
    pub fn perturb(&self, truth: &GeoDb) -> Result<GeoDb, SoiError> {
        if !(0.0..=1.0).contains(&self.accuracy) {
            return Err(SoiError::InvalidConfig(format!(
                "accuracy {} outside [0, 1]",
                self.accuracy
            )));
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x67656f5f6e6f6973);
        let all: Vec<CountryCode> = all_countries().iter().map(|c| c.code).collect();
        let blocks = truth
            .blocks
            .iter()
            .map(|&(p, c)| {
                if p.len() < self.min_error_len || rng.gen_bool(self.accuracy) {
                    return (p, c);
                }
                let wrong = if rng.gen_bool(self.regional_confusion.clamp(0.0, 1.0)) {
                    // Same-region confusion if the country is known.
                    let region = c.info().map(|i| i.region);
                    let pool: Vec<CountryCode> = all_countries()
                        .iter()
                        .filter(|i| Some(i.region) == region && i.code != c)
                        .map(|i| i.code)
                        .collect();
                    pool.choose(&mut rng).copied()
                } else {
                    None
                };
                let fallback = loop {
                    let cand = *all.choose(&mut rng).expect("registry non-empty");
                    if cand != c {
                        break cand;
                    }
                };
                (p, wrong.unwrap_or(fallback))
            })
            .collect::<Vec<_>>();
        GeoDb::from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use soi_types::cc;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn db() -> GeoDb {
        GeoDb::from_blocks([
            (p("10.0.0.0/9"), cc("NO")),
            (p("10.128.0.0/9"), cc("SE")),
            (p("20.0.0.0/8"), cc("AO")),
        ])
        .unwrap()
    }

    #[test]
    fn lookups() {
        let d = db();
        assert_eq!(
            d.country_of_ip(u32::from(std::net::Ipv4Addr::new(10, 1, 1, 1))),
            Some(cc("NO"))
        );
        assert_eq!(
            d.country_of_ip(u32::from(std::net::Ipv4Addr::new(10, 200, 1, 1))),
            Some(cc("SE"))
        );
        assert_eq!(d.country_of_ip(u32::from(std::net::Ipv4Addr::new(50, 0, 0, 1))), None);
    }

    #[test]
    fn rejects_overlap() {
        assert!(GeoDb::from_blocks([(p("10.0.0.0/8"), cc("NO")), (p("10.1.0.0/16"), cc("SE"))])
            .is_err());
    }

    #[test]
    fn count_splits_across_blocks() {
        let d = db();
        let counts = d.count_by_country(p("10.0.0.0/8"));
        assert_eq!(counts[&cc("NO")], 1 << 23);
        assert_eq!(counts[&cc("SE")], 1 << 23);
        // Query smaller than a block.
        let counts = d.count_by_country(p("10.0.1.0/24"));
        assert_eq!(counts[&cc("NO")], 256);
        assert_eq!(counts.len(), 1);
        // Query outside any block.
        assert!(d.count_by_country(p("99.0.0.0/8")).is_empty());
    }

    #[test]
    fn multi_prefix_counts_sum() {
        let d = db();
        let counts = d.count_by_country_multi(&[p("10.0.0.0/9"), p("20.0.0.0/9")]);
        assert_eq!(counts[&cc("NO")], 1 << 23);
        assert_eq!(counts[&cc("AO")], 1 << 23);
    }

    #[test]
    fn totals_match_blocks() {
        let d = db();
        let t = d.totals();
        assert_eq!(t[&cc("AO")], 1 << 24);
        assert_eq!(t[&cc("NO")], 1 << 23);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        // Many small blocks; check error rate is near 1 - accuracy.
        let blocks: Vec<_> =
            (0u32..2000).map(|i| (Ipv4Prefix::new(i << 12, 24).unwrap(), cc("NO"))).collect();
        let truth = GeoDb::from_blocks(blocks).unwrap();
        let noise = GeoNoise { accuracy: 0.8, regional_confusion: 0.5, min_error_len: 18, seed: 7 };
        let a = noise.perturb(&truth).unwrap();
        let b = noise.perturb(&truth).unwrap();
        assert_eq!(a.blocks(), b.blocks(), "same seed, same output");
        let wrong = a.blocks().iter().filter(|&&(_, c)| c != cc("NO")).count();
        let rate = wrong as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.05, "error rate {rate} far from 0.2");
        // Never relabels to the same country, so errors are real errors.
        let noise_full =
            GeoNoise { accuracy: 0.0, regional_confusion: 1.0, min_error_len: 18, seed: 1 };
        let all_wrong = noise_full.perturb(&truth).unwrap();
        assert!(all_wrong.blocks().iter().all(|&(_, c)| c != cc("NO")));
    }

    #[test]
    fn perfect_accuracy_is_identity() {
        let truth = db();
        let out = GeoNoise { accuracy: 1.0, regional_confusion: 0.5, min_error_len: 18, seed: 3 }
            .perturb(&truth)
            .unwrap();
        assert_eq!(out.blocks(), truth.blocks());
    }

    #[test]
    fn large_blocks_are_immune() {
        let truth =
            GeoDb::from_blocks([(p("10.0.0.0/12"), cc("AR")), (p("20.0.0.0/24"), cc("AR"))])
                .unwrap();
        let noise = GeoNoise { accuracy: 0.0, regional_confusion: 1.0, min_error_len: 18, seed: 5 };
        let out = noise.perturb(&truth).unwrap();
        assert_eq!(out.blocks()[0].1, cc("AR"), "/12 must never be mislocated");
        assert_ne!(out.blocks()[1].1, cc("AR"), "/24 errs at accuracy 0");
    }

    #[test]
    fn invalid_accuracy_rejected() {
        let truth = db();
        assert!(GeoNoise { accuracy: 1.5, regional_confusion: 0.5, min_error_len: 18, seed: 0 }
            .perturb(&truth)
            .is_err());
    }

    proptest! {
        /// Counting over a random query range equals brute-force counting
        /// of a sampled set of addresses (scaled check via exact totals on
        /// block intersections).
        #[test]
        fn prop_counts_match_bruteforce(addr: u32, len in 8u8..=28) {
            let d = db();
            let q = Ipv4Prefix::new(addr, len).unwrap();
            let fast = d.count_by_country(q);
            // Brute force via per-block interval intersection.
            let mut slow: HashMap<CountryCode, u64> = HashMap::new();
            for &(b, c) in d.blocks() {
                let s = (b.network() as u64).max(q.network() as u64);
                let e = (b.network() as u64 + b.num_addresses())
                    .min(q.network() as u64 + q.num_addresses());
                if e > s {
                    *slow.entry(c).or_default() += e - s;
                }
            }
            prop_assert_eq!(fast, slow);
        }
    }
}
