//! Simulation dates.
//!
//! The paper's dataset captures ownership during a reference timeframe
//! (June 2019 - November 2020) and Figure 5 tracks customer-cone growth from
//! January 2010 to June 2020. A month-granularity date is all the substrate
//! needs; using a purpose-built type avoids dragging in a calendar crate.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SoiError;

/// A month-granularity date, e.g. `2020-06`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate {
    /// Calendar year.
    pub year: u16,
    /// Month in 1..=12.
    pub month: u8,
}

impl SimDate {
    /// Constructs a date, validating the month.
    pub fn new(year: u16, month: u8) -> Result<Self, SoiError> {
        if (1..=12).contains(&month) {
            Ok(SimDate { year, month })
        } else {
            Err(SoiError::Parse(format!("invalid month {month}")))
        }
    }

    /// The paper's dataset snapshot date (June 2020, used for ASRank data).
    pub const SNAPSHOT: SimDate = SimDate { year: 2020, month: 6 };

    /// Start of the Figure 5 cone-growth series (January 2010).
    pub const HISTORY_START: SimDate = SimDate { year: 2010, month: 1 };

    /// Months elapsed since year 0; gives a total order usable as an x-axis.
    pub fn months_since_epoch(self) -> u32 {
        u32::from(self.year) * 12 + u32::from(self.month) - 1
    }

    /// The date `n` months later.
    pub fn plus_months(self, n: u32) -> SimDate {
        let total = self.months_since_epoch() + n;
        SimDate { year: (total / 12) as u16, month: (total % 12 + 1) as u8 }
    }

    /// Fractional year (e.g. 2020-06 -> 2020.417), for regression x-axes.
    pub fn as_year_fraction(self) -> f64 {
        f64::from(self.year) + (f64::from(self.month) - 1.0) / 12.0
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Debug for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for SimDate {
    type Err = SoiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (y, m) =
            s.split_once('-').ok_or_else(|| SoiError::Parse(format!("invalid date: {s:?}")))?;
        let year = y.parse().map_err(|_| SoiError::Parse(format!("invalid year in {s:?}")))?;
        let month = m.parse().map_err(|_| SoiError::Parse(format!("invalid month in {s:?}")))?;
        SimDate::new(year, month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimDate::new(2019, 6).unwrap();
        let b = SimDate::new(2020, 11).unwrap();
        assert!(a < b);
        assert_eq!(a.plus_months(17), b);
        assert_eq!(b.months_since_epoch() - a.months_since_epoch(), 17);
    }

    #[test]
    fn month_validation() {
        assert!(SimDate::new(2020, 0).is_err());
        assert!(SimDate::new(2020, 13).is_err());
    }

    #[test]
    fn year_rollover() {
        let d = SimDate::new(2019, 12).unwrap().plus_months(1);
        assert_eq!(d, SimDate::new(2020, 1).unwrap());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let d: SimDate = "2020-06".parse().unwrap();
        assert_eq!(d, SimDate::SNAPSHOT);
        assert_eq!(d.to_string(), "2020-06");
        assert!("2020".parse::<SimDate>().is_err());
        assert!("2020-00".parse::<SimDate>().is_err());
    }

    #[test]
    fn year_fraction_is_monotonic() {
        let mut prev = SimDate::HISTORY_START;
        for i in 1..200 {
            let next = SimDate::HISTORY_START.plus_months(i);
            assert!(next.as_year_fraction() > prev.as_year_fraction());
            prev = next;
        }
    }
}
