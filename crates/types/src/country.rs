//! Countries, regions and Regional Internet Registries.
//!
//! The paper analyses state ownership at country granularity and rolls
//! results up per RIR (Table 4) and per region (Figure 1: prevalence is much
//! higher in Africa and Asia). This module provides ISO-3166 alpha-2 country
//! codes plus a static registry of countries with their RIR, coarse region,
//! approximate Internet-size class, and ICT maturity. The latter two fields
//! parameterize the synthetic world: size class scales how many ASes and
//! addresses a country hosts, while ICT maturity controls how likely it is
//! that ownership documentation is available online (a limitation the paper
//! calls out in §9 "Visibility and data interpretation").

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SoiError;

/// An ISO-3166 alpha-2 country code (two ASCII uppercase letters).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Constructs a code from two bytes, normalizing to uppercase.
    ///
    /// Returns an error unless both bytes are ASCII letters.
    pub fn new(a: u8, b: u8) -> Result<Self, SoiError> {
        if a.is_ascii_alphabetic() && b.is_ascii_alphabetic() {
            Ok(CountryCode([a.to_ascii_uppercase(), b.to_ascii_uppercase()]))
        } else {
            Err(SoiError::Parse(format!("invalid country code bytes: {a:#x} {b:#x}")))
        }
    }

    /// The code as a `&str` (always two uppercase ASCII letters).
    pub fn as_str(&self) -> &str {
        // Invariant: constructor only accepts ASCII letters.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }

    /// Looks up this country in the static registry.
    pub fn info(&self) -> Option<&'static CountryInfo> {
        country_info(*self)
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = SoiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = s.as_bytes();
        if bytes.len() != 2 {
            return Err(SoiError::Parse(format!("invalid country code: {s:?}")));
        }
        CountryCode::new(bytes[0], bytes[1])
    }
}

impl From<CountryCode> for String {
    fn from(cc: CountryCode) -> String {
        cc.as_str().to_owned()
    }
}

impl TryFrom<String> for CountryCode {
    type Error = SoiError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

/// Convenience constructor for compile-time-known codes; panics on invalid
/// input, so only use with literals (tests, static tables).
pub const fn cc(code: &str) -> CountryCode {
    let b = code.as_bytes();
    assert!(b.len() == 2, "country code must be two letters");
    assert!(
        b[0].is_ascii_uppercase() && b[1].is_ascii_uppercase(),
        "country code must be uppercase ASCII"
    );
    CountryCode([b[0], b[1]])
}

/// The five Regional Internet Registries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Rir {
    Afrinic,
    Apnic,
    Arin,
    Lacnic,
    Ripe,
}

impl Rir {
    /// All five RIRs, in the order the paper's Table 4 lists them.
    pub const ALL: [Rir; 5] = [Rir::Apnic, Rir::Ripe, Rir::Arin, Rir::Afrinic, Rir::Lacnic];

    /// The registry's conventional display name.
    pub fn name(self) -> &'static str {
        match self {
            Rir::Afrinic => "AFRINIC",
            Rir::Apnic => "APNIC",
            Rir::Arin => "ARIN",
            Rir::Lacnic => "LACNIC",
            Rir::Ripe => "RIPE",
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coarse world regions used by the generator's prevalence profiles.
///
/// The paper finds state ownership "much more prevalent in Africa and Asia";
/// the generator's per-region ownership probabilities encode that shape.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    Africa,
    Asia,
    CentralAsia,
    Europe,
    LatinAmerica,
    MiddleEast,
    NorthAmerica,
    Oceania,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 8] = [
        Region::Africa,
        Region::Asia,
        Region::CentralAsia,
        Region::Europe,
        Region::LatinAmerica,
        Region::MiddleEast,
        Region::NorthAmerica,
        Region::Oceania,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Africa => "Africa",
            Region::Asia => "Asia",
            Region::CentralAsia => "Central Asia",
            Region::Europe => "Europe",
            Region::LatinAmerica => "Latin America",
            Region::MiddleEast => "Middle East",
            Region::NorthAmerica => "North America",
            Region::Oceania => "Oceania",
        };
        f.write_str(s)
    }
}

/// Static profile of a country.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountryInfo {
    /// ISO-3166 alpha-2 code.
    pub code: CountryCode,
    /// English short name.
    pub name: &'static str,
    /// Which RIR serves the country.
    pub rir: Rir,
    /// Coarse region for prevalence profiles.
    pub region: Region,
    /// Log-scale Internet size class in 1..=6 (6 = US/China scale). Drives
    /// how many ASes, prefixes and users the generator places here.
    pub size_class: u8,
    /// ICT-maturity score in 0..=100. Drives availability of online
    /// ownership documentation in the synthetic document corpus.
    pub ict_maturity: u8,
}

macro_rules! countries {
    ($(($code:literal, $name:literal, $rir:ident, $region:ident, $size:literal, $ict:literal)),+ $(,)?) => {
        &[$(CountryInfo {
            code: cc($code),
            name: $name,
            rir: Rir::$rir,
            region: Region::$region,
            size_class: $size,
            ict_maturity: $ict,
        }),+]
    };
}

/// The static registry: 193 countries/territories with RIR and region.
///
/// Size classes and ICT maturities are coarse, hand-assigned approximations;
/// they only need to produce a world whose aggregate shape matches the
/// paper's (a few huge countries, a long tail of small ones, documentation
/// sparser in the developing world).
static COUNTRIES: &[CountryInfo] = countries![
    // ---- AFRINIC ----
    ("DZ", "Algeria", Afrinic, Africa, 4, 45),
    ("AO", "Angola", Afrinic, Africa, 3, 35),
    ("BJ", "Benin", Afrinic, Africa, 2, 30),
    ("BW", "Botswana", Afrinic, Africa, 2, 45),
    ("BF", "Burkina Faso", Afrinic, Africa, 2, 25),
    ("BI", "Burundi", Afrinic, Africa, 1, 20),
    ("CM", "Cameroon", Afrinic, Africa, 3, 30),
    ("CV", "Cape Verde", Afrinic, Africa, 1, 45),
    ("CF", "Central African Republic", Afrinic, Africa, 1, 15),
    ("TD", "Chad", Afrinic, Africa, 2, 15),
    ("KM", "Comoros", Afrinic, Africa, 1, 20),
    ("CG", "Congo", Afrinic, Africa, 2, 25),
    ("CD", "DR Congo", Afrinic, Africa, 3, 20),
    ("CI", "Ivory Coast", Afrinic, Africa, 3, 35),
    ("DJ", "Djibouti", Afrinic, Africa, 1, 30),
    ("EG", "Egypt", Afrinic, Africa, 4, 50),
    ("GQ", "Equatorial Guinea", Afrinic, Africa, 1, 25),
    ("ER", "Eritrea", Afrinic, Africa, 1, 10),
    ("SZ", "Eswatini", Afrinic, Africa, 1, 30),
    ("ET", "Ethiopia", Afrinic, Africa, 3, 20),
    ("GA", "Gabon", Afrinic, Africa, 2, 35),
    ("GM", "Gambia", Afrinic, Africa, 1, 25),
    ("GH", "Ghana", Afrinic, Africa, 3, 40),
    ("GN", "Guinea", Afrinic, Africa, 2, 20),
    ("GW", "Guinea-Bissau", Afrinic, Africa, 1, 15),
    ("KE", "Kenya", Afrinic, Africa, 3, 45),
    ("LS", "Lesotho", Afrinic, Africa, 1, 25),
    ("LR", "Liberia", Afrinic, Africa, 1, 20),
    ("LY", "Libya", Afrinic, Africa, 2, 30),
    ("MG", "Madagascar", Afrinic, Africa, 2, 25),
    ("MW", "Malawi", Afrinic, Africa, 2, 20),
    ("ML", "Mali", Afrinic, Africa, 2, 20),
    ("MR", "Mauritania", Afrinic, Africa, 1, 25),
    ("MU", "Mauritius", Afrinic, Africa, 2, 55),
    ("MA", "Morocco", Afrinic, Africa, 3, 50),
    ("MZ", "Mozambique", Afrinic, Africa, 2, 25),
    ("NA", "Namibia", Afrinic, Africa, 2, 40),
    ("NE", "Niger", Afrinic, Africa, 2, 15),
    ("NG", "Nigeria", Afrinic, Africa, 4, 40),
    ("RW", "Rwanda", Afrinic, Africa, 2, 35),
    ("ST", "Sao Tome and Principe", Afrinic, Africa, 1, 25),
    ("SN", "Senegal", Afrinic, Africa, 2, 35),
    ("SC", "Seychelles", Afrinic, Africa, 1, 50),
    ("SL", "Sierra Leone", Afrinic, Africa, 1, 20),
    ("SO", "Somalia", Afrinic, Africa, 2, 15),
    ("ZA", "South Africa", Afrinic, Africa, 4, 60),
    ("SS", "South Sudan", Afrinic, Africa, 1, 10),
    ("SD", "Sudan", Afrinic, Africa, 2, 20),
    ("TZ", "Tanzania", Afrinic, Africa, 3, 30),
    ("TG", "Togo", Afrinic, Africa, 1, 25),
    ("TN", "Tunisia", Afrinic, Africa, 3, 50),
    ("UG", "Uganda", Afrinic, Africa, 2, 30),
    ("ZM", "Zambia", Afrinic, Africa, 2, 25),
    ("ZW", "Zimbabwe", Afrinic, Africa, 2, 30),
    // ---- APNIC ----
    ("AF", "Afghanistan", Apnic, CentralAsia, 2, 15),
    ("AU", "Australia", Apnic, Oceania, 5, 90),
    ("BD", "Bangladesh", Apnic, Asia, 4, 35),
    ("BN", "Brunei", Apnic, Asia, 1, 65),
    ("BT", "Bhutan", Apnic, Asia, 1, 35),
    ("CN", "China", Apnic, Asia, 6, 70),
    ("FJ", "Fiji", Apnic, Oceania, 1, 45),
    ("HK", "Hong Kong", Apnic, Asia, 4, 90),
    ("ID", "Indonesia", Apnic, Asia, 5, 55),
    ("IN", "India", Apnic, Asia, 6, 55),
    ("JP", "Japan", Apnic, Asia, 6, 90),
    ("KH", "Cambodia", Apnic, Asia, 2, 35),
    ("KI", "Kiribati", Apnic, Oceania, 1, 25),
    ("KP", "North Korea", Apnic, Asia, 1, 5),
    ("KR", "South Korea", Apnic, Asia, 5, 90),
    ("LA", "Laos", Apnic, Asia, 2, 30),
    ("LK", "Sri Lanka", Apnic, Asia, 3, 45),
    ("MM", "Myanmar", Apnic, Asia, 3, 25),
    ("MN", "Mongolia", Apnic, Asia, 2, 45),
    ("MO", "Macao", Apnic, Asia, 1, 75),
    ("MV", "Maldives", Apnic, Asia, 1, 50),
    ("MY", "Malaysia", Apnic, Asia, 4, 70),
    ("NP", "Nepal", Apnic, Asia, 2, 30),
    ("NR", "Nauru", Apnic, Oceania, 1, 25),
    ("NZ", "New Zealand", Apnic, Oceania, 3, 88),
    ("PG", "Papua New Guinea", Apnic, Oceania, 2, 20),
    ("PH", "Philippines", Apnic, Asia, 4, 50),
    ("PK", "Pakistan", Apnic, Asia, 4, 35),
    ("PW", "Palau", Apnic, Oceania, 1, 35),
    ("SB", "Solomon Islands", Apnic, Oceania, 1, 20),
    ("SG", "Singapore", Apnic, Asia, 4, 95),
    ("TH", "Thailand", Apnic, Asia, 4, 60),
    ("TL", "Timor-Leste", Apnic, Asia, 1, 25),
    ("TO", "Tonga", Apnic, Oceania, 1, 35),
    ("TV", "Tuvalu", Apnic, Oceania, 1, 25),
    ("TW", "Taiwan", Apnic, Asia, 4, 85),
    ("VN", "Vietnam", Apnic, Asia, 4, 50),
    ("VU", "Vanuatu", Apnic, Oceania, 1, 30),
    ("WS", "Samoa", Apnic, Oceania, 1, 35),
    ("FM", "Micronesia", Apnic, Oceania, 1, 30),
    ("MH", "Marshall Islands", Apnic, Oceania, 1, 30),
    // ---- ARIN ----
    ("US", "United States", Arin, NorthAmerica, 6, 92),
    ("CA", "Canada", Arin, NorthAmerica, 5, 90),
    ("GL", "Greenland", Arin, NorthAmerica, 1, 70),
    ("BM", "Bermuda", Arin, NorthAmerica, 1, 80),
    ("PR", "Puerto Rico", Arin, NorthAmerica, 2, 70),
    // ---- LACNIC ----
    ("AR", "Argentina", Lacnic, LatinAmerica, 4, 60),
    ("BO", "Bolivia", Lacnic, LatinAmerica, 2, 40),
    ("BR", "Brazil", Lacnic, LatinAmerica, 5, 60),
    ("BZ", "Belize", Lacnic, LatinAmerica, 1, 40),
    ("CL", "Chile", Lacnic, LatinAmerica, 3, 70),
    ("CO", "Colombia", Lacnic, LatinAmerica, 4, 55),
    ("CR", "Costa Rica", Lacnic, LatinAmerica, 2, 60),
    ("CU", "Cuba", Lacnic, LatinAmerica, 2, 25),
    ("DO", "Dominican Republic", Lacnic, LatinAmerica, 2, 45),
    ("EC", "Ecuador", Lacnic, LatinAmerica, 3, 50),
    ("GT", "Guatemala", Lacnic, LatinAmerica, 2, 40),
    ("GY", "Guyana", Lacnic, LatinAmerica, 1, 35),
    ("HN", "Honduras", Lacnic, LatinAmerica, 2, 35),
    ("HT", "Haiti", Lacnic, LatinAmerica, 1, 20),
    ("JM", "Jamaica", Lacnic, LatinAmerica, 1, 45),
    ("MX", "Mexico", Lacnic, LatinAmerica, 5, 60),
    ("NI", "Nicaragua", Lacnic, LatinAmerica, 1, 30),
    ("PA", "Panama", Lacnic, LatinAmerica, 2, 55),
    ("PY", "Paraguay", Lacnic, LatinAmerica, 2, 40),
    ("PE", "Peru", Lacnic, LatinAmerica, 3, 50),
    ("SR", "Suriname", Lacnic, LatinAmerica, 1, 40),
    ("SV", "El Salvador", Lacnic, LatinAmerica, 2, 40),
    ("TT", "Trinidad and Tobago", Lacnic, LatinAmerica, 1, 55),
    ("UY", "Uruguay", Lacnic, LatinAmerica, 2, 70),
    ("VE", "Venezuela", Lacnic, LatinAmerica, 3, 35),
    // ---- RIPE: Europe ----
    ("AL", "Albania", Ripe, Europe, 2, 50),
    ("AD", "Andorra", Ripe, Europe, 1, 80),
    ("AM", "Armenia", Ripe, Europe, 2, 50),
    ("AT", "Austria", Ripe, Europe, 3, 88),
    ("AZ", "Azerbaijan", Ripe, CentralAsia, 2, 45),
    ("BA", "Bosnia and Herzegovina", Ripe, Europe, 2, 50),
    ("BE", "Belgium", Ripe, Europe, 3, 88),
    ("BG", "Bulgaria", Ripe, Europe, 3, 65),
    ("BY", "Belarus", Ripe, Europe, 3, 55),
    ("CH", "Switzerland", Ripe, Europe, 4, 92),
    ("CY", "Cyprus", Ripe, Europe, 1, 75),
    ("CZ", "Czechia", Ripe, Europe, 3, 85),
    ("DE", "Germany", Ripe, Europe, 6, 92),
    ("DK", "Denmark", Ripe, Europe, 3, 95),
    ("EE", "Estonia", Ripe, Europe, 2, 92),
    ("ES", "Spain", Ripe, Europe, 5, 85),
    ("FI", "Finland", Ripe, Europe, 3, 95),
    ("FR", "France", Ripe, Europe, 5, 90),
    ("GB", "United Kingdom", Ripe, Europe, 5, 92),
    ("GE", "Georgia", Ripe, Europe, 2, 50),
    ("GR", "Greece", Ripe, Europe, 3, 75),
    ("HR", "Croatia", Ripe, Europe, 2, 72),
    ("HU", "Hungary", Ripe, Europe, 3, 75),
    ("IE", "Ireland", Ripe, Europe, 3, 90),
    ("IS", "Iceland", Ripe, Europe, 1, 95),
    ("IT", "Italy", Ripe, Europe, 5, 82),
    ("KZ", "Kazakhstan", Ripe, CentralAsia, 3, 50),
    ("KG", "Kyrgyzstan", Ripe, CentralAsia, 2, 35),
    ("LI", "Liechtenstein", Ripe, Europe, 1, 90),
    ("LT", "Lithuania", Ripe, Europe, 2, 80),
    ("LU", "Luxembourg", Ripe, Europe, 1, 92),
    ("LV", "Latvia", Ripe, Europe, 2, 80),
    ("MC", "Monaco", Ripe, Europe, 1, 88),
    ("MD", "Moldova", Ripe, Europe, 2, 50),
    ("ME", "Montenegro", Ripe, Europe, 1, 55),
    ("MK", "North Macedonia", Ripe, Europe, 2, 55),
    ("MT", "Malta", Ripe, Europe, 1, 80),
    ("NL", "Netherlands", Ripe, Europe, 5, 95),
    ("NO", "Norway", Ripe, Europe, 3, 96),
    ("PL", "Poland", Ripe, Europe, 4, 78),
    ("PT", "Portugal", Ripe, Europe, 3, 80),
    ("RO", "Romania", Ripe, Europe, 3, 68),
    ("RS", "Serbia", Ripe, Europe, 2, 58),
    ("RU", "Russia", Ripe, Europe, 5, 65),
    ("SE", "Sweden", Ripe, Europe, 4, 96),
    ("SI", "Slovenia", Ripe, Europe, 2, 80),
    ("SK", "Slovakia", Ripe, Europe, 2, 76),
    ("SM", "San Marino", Ripe, Europe, 1, 80),
    ("TJ", "Tajikistan", Ripe, CentralAsia, 1, 25),
    ("TM", "Turkmenistan", Ripe, CentralAsia, 1, 15),
    ("TR", "Turkey", Ripe, Europe, 4, 60),
    ("UA", "Ukraine", Ripe, Europe, 4, 60),
    ("UZ", "Uzbekistan", Ripe, CentralAsia, 3, 35),
    ("VA", "Vatican City", Ripe, Europe, 1, 70),
    ("IM", "Isle of Man", Ripe, Europe, 1, 82),
    // ---- RIPE: Middle East ----
    ("AE", "United Arab Emirates", Ripe, MiddleEast, 3, 85),
    ("BH", "Bahrain", Ripe, MiddleEast, 2, 80),
    ("IL", "Israel", Ripe, MiddleEast, 3, 88),
    ("IQ", "Iraq", Ripe, MiddleEast, 3, 30),
    ("IR", "Iran", Ripe, MiddleEast, 4, 40),
    ("JO", "Jordan", Ripe, MiddleEast, 2, 55),
    ("KW", "Kuwait", Ripe, MiddleEast, 2, 75),
    ("LB", "Lebanon", Ripe, MiddleEast, 2, 50),
    ("OM", "Oman", Ripe, MiddleEast, 2, 65),
    ("PS", "Palestine", Ripe, MiddleEast, 1, 40),
    ("QA", "Qatar", Ripe, MiddleEast, 2, 85),
    ("SA", "Saudi Arabia", Ripe, MiddleEast, 4, 75),
    ("SY", "Syria", Ripe, MiddleEast, 2, 20),
    ("YE", "Yemen", Ripe, MiddleEast, 2, 15),
];

/// Returns the full static country registry.
pub fn all_countries() -> &'static [CountryInfo] {
    COUNTRIES
}

/// Looks up a country in the static registry by code.
pub fn country_info(code: CountryCode) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.code == code)
}

/// Looks up a country by its English short name (case-insensitive) —
/// used to resolve shareholder names like "Government of Norway" to a
/// state.
pub fn country_by_name(name: &str) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.name.eq_ignore_ascii_case(name.trim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_no_duplicate_codes() {
        let mut seen = HashSet::new();
        for c in all_countries() {
            assert!(seen.insert(c.code), "duplicate country {}", c.code);
        }
    }

    #[test]
    fn registry_covers_all_rirs_and_regions() {
        let rirs: HashSet<_> = all_countries().iter().map(|c| c.rir).collect();
        assert_eq!(rirs.len(), 5);
        let regions: HashSet<_> = all_countries().iter().map(|c| c.region).collect();
        assert_eq!(regions.len(), Region::ALL.len());
    }

    #[test]
    fn registry_is_reasonably_sized() {
        // The paper's world has ~246 country entities; ours is a curated
        // subset but must stay close to real-world RIR proportions.
        let n = all_countries().len();
        assert!((150..=250).contains(&n), "unexpected registry size {n}");
        let ripe = all_countries().iter().filter(|c| c.rir == Rir::Ripe).count();
        let afrinic = all_countries().iter().filter(|c| c.rir == Rir::Afrinic).count();
        assert!(ripe > 60, "RIPE should be the largest registry, got {ripe}");
        assert!(afrinic > 45);
    }

    #[test]
    fn size_and_ict_are_in_range() {
        for c in all_countries() {
            assert!((1..=6).contains(&c.size_class), "{}: size {}", c.code, c.size_class);
            assert!(c.ict_maturity <= 100);
        }
    }

    #[test]
    fn code_parsing_roundtrips() {
        for c in all_countries() {
            let parsed: CountryCode = c.code.as_str().parse().unwrap();
            assert_eq!(parsed, c.code);
        }
    }

    #[test]
    fn lowercase_is_normalized() {
        assert_eq!("no".parse::<CountryCode>().unwrap(), cc("NO"));
    }

    #[test]
    fn invalid_codes_rejected() {
        assert!("N".parse::<CountryCode>().is_err());
        assert!("NOR".parse::<CountryCode>().is_err());
        assert!("1A".parse::<CountryCode>().is_err());
    }

    #[test]
    fn known_lookups() {
        let no = country_info(cc("NO")).unwrap();
        assert_eq!(no.name, "Norway");
        assert_eq!(no.rir, Rir::Ripe);
        let ao = country_info(cc("AO")).unwrap();
        assert_eq!(ao.rir, Rir::Afrinic);
        assert_eq!(ao.region, Region::Africa);
    }
}
