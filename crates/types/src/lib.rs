//! Core identifier and network types shared by every crate in the
//! `state-owned-ases` workspace.
//!
//! The types here are deliberately small and dependency-free: autonomous
//! system numbers ([`Asn`]), ISO-3166 country codes ([`CountryCode`]) backed
//! by a static registry of countries and their Regional Internet Registries
//! ([`Rir`]), IPv4 prefixes ([`Ipv4Prefix`]) with a longest-prefix-match trie
//! ([`PrefixTrie`]), and exact fixed-point equity arithmetic ([`Equity`]) used
//! by the ownership-confirmation engine (the paper's IMF ">= 50% of equity"
//! rule must never be subject to floating-point rounding).

pub mod asn;
pub mod checksum;
pub mod country;
pub mod date;
pub mod equity;
pub mod error;
pub mod ids;
pub mod prefix;
pub mod shard;
pub mod trie;

pub use asn::Asn;
pub use checksum::{fnv1a64, Fnv1a64};
pub use country::{
    all_countries, cc, country_by_name, country_info, CountryCode, CountryInfo, Region, Rir,
};
pub use date::SimDate;
pub use equity::Equity;
pub use error::SoiError;
pub use ids::{CompanyId, OrgId};
pub use prefix::Ipv4Prefix;
pub use shard::{map_chunks, resolve_threads};
pub use trie::PrefixTrie;

/// Number of IPv4 addresses, used throughout for market-share style
/// computations (fractions of a country's announced address space).
pub type AddressCount = u64;
