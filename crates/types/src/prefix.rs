//! IPv4 prefixes.
//!
//! The paper's market-share analyses count IPv4 addresses per `(origin AS,
//! country)` pair, so exact prefix arithmetic (containment, splitting,
//! address counts) is load-bearing. IPv6 is out of scope, matching the
//! paper's address-space analysis.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SoiError;

/// An IPv4 prefix in CIDR notation: a network address and a mask length.
///
/// The stored address always has its host bits zeroed; [`Ipv4Prefix::new`]
/// enforces this, so two prefixes covering the same range always compare
/// equal.
///
/// ```
/// use soi_types::Ipv4Prefix;
///
/// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
/// let sub: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
/// assert!(p.covers(sub));
/// assert_eq!(p.num_addresses(), 1 << 24);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Builds a prefix, rejecting mask lengths above 32.
    ///
    /// Host bits in `addr` are silently zeroed so the representation is
    /// canonical (mirrors what routers do with received NLRI).
    pub fn new(addr: u32, len: u8) -> Result<Self, SoiError> {
        if len > 32 {
            return Err(SoiError::Parse(format!("prefix length {len} exceeds 32")));
        }
        Ok(Ipv4Prefix { addr: addr & Self::mask(len), len })
    }

    /// Builds a prefix from compile-time-known parts; panics if `len > 32`,
    /// so only use with literals.
    pub const fn lit(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        assert!(len <= 32);
        let addr = ((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32);
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ipv4Prefix { addr: addr & mask, len }
    }

    /// The netmask for a given prefix length.
    #[inline]
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address (host bits zero).
    #[inline]
    pub fn network(self) -> u32 {
        self.addr
    }

    /// Mask length.
    #[allow(clippy::len_without_is_empty)] // a mask length is not a container size
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered (2^(32-len)).
    #[inline]
    pub fn num_addresses(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// Last address covered by the prefix.
    #[inline]
    pub fn last_address(self) -> u32 {
        self.addr | !Self::mask(self.len)
    }

    /// True if `ip` falls inside this prefix.
    #[inline]
    pub fn contains(self, ip: u32) -> bool {
        (ip & Self::mask(self.len)) == self.addr
    }

    /// True if `other` is fully contained in `self` (equal counts).
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Splits the prefix into its two halves. Returns `None` for a /32.
    pub fn split(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let low = Ipv4Prefix { addr: self.addr, len: child_len };
        let high = Ipv4Prefix { addr: self.addr | (1 << (32 - child_len as u32)), len: child_len };
        Some((low, high))
    }

    /// Enumerates the `count` subprefixes of length `new_len` covering the
    /// same range, in address order. Returns an error if `new_len` is not
    /// in `len..=32` or would enumerate more than 2^16 children (guard
    /// against accidental huge expansions).
    pub fn subdivide(self, new_len: u8) -> Result<Vec<Ipv4Prefix>, SoiError> {
        if new_len < self.len || new_len > 32 {
            return Err(SoiError::InvalidConfig(format!(
                "cannot subdivide /{} into /{}",
                self.len, new_len
            )));
        }
        let bits = (new_len - self.len) as u32;
        if bits > 16 {
            return Err(SoiError::InvalidConfig(format!(
                "refusing to enumerate 2^{bits} subprefixes"
            )));
        }
        let step = 1u32 << (32 - new_len as u32);
        let count = 1u32 << bits;
        Ok((0..count).map(|i| Ipv4Prefix { addr: self.addr + i * step, len: new_len }).collect())
    }

    /// The `n`-th address inside the prefix (0-based); `None` if out of
    /// range.
    pub fn nth_address(self, n: u64) -> Option<u32> {
        if n < self.num_addresses() {
            Some(self.addr + n as u32)
        } else {
            None
        }
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Prefix {
    type Err = SoiError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| SoiError::Parse(format!("missing '/' in prefix: {s:?}")))?;
        let ip: Ipv4Addr =
            ip.parse().map_err(|_| SoiError::Parse(format!("invalid IPv4 address in {s:?}")))?;
        let len: u8 =
            len.parse().map_err(|_| SoiError::Parse(format!("invalid prefix length in {s:?}")))?;
        Ipv4Prefix::new(u32::from(ip), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Ipv4Prefix::new(0x0A0A0A0A, 8).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(p, "10.0.0.0/8".parse().unwrap());
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(Ipv4Prefix::new(0, 33).is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn address_counting() {
        assert_eq!(Ipv4Prefix::lit(10, 0, 0, 0, 8).num_addresses(), 1 << 24);
        assert_eq!(Ipv4Prefix::lit(1, 2, 3, 4, 32).num_addresses(), 1);
        assert_eq!(Ipv4Prefix::DEFAULT.num_addresses(), 1u64 << 32);
    }

    #[test]
    fn containment_and_overlap() {
        let p8 = Ipv4Prefix::lit(10, 0, 0, 0, 8);
        let p16 = Ipv4Prefix::lit(10, 1, 0, 0, 16);
        let other = Ipv4Prefix::lit(11, 0, 0, 0, 16);
        assert!(p8.covers(p16));
        assert!(!p16.covers(p8));
        assert!(p8.overlaps(p16) && p16.overlaps(p8));
        assert!(!p8.overlaps(other));
        assert!(p8.contains(u32::from(Ipv4Addr::new(10, 200, 1, 1))));
        assert!(!p8.contains(u32::from(Ipv4Addr::new(11, 0, 0, 1))));
    }

    #[test]
    fn split_halves() {
        let p = Ipv4Prefix::lit(10, 0, 0, 0, 8);
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(Ipv4Prefix::lit(1, 1, 1, 1, 32).split().is_none());
    }

    #[test]
    fn subdivide_enumerates_in_order() {
        let p = Ipv4Prefix::lit(192, 168, 0, 0, 16);
        let subs = p.subdivide(18).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[1].to_string(), "192.168.64.0/18");
        assert!(p.subdivide(8).is_err());
        assert!(p.subdivide(33).is_err());
        assert!(Ipv4Prefix::DEFAULT.subdivide(24).is_err(), "guard on huge expansion");
    }

    #[test]
    fn nth_address_bounds() {
        let p = Ipv4Prefix::lit(10, 0, 0, 0, 30);
        assert_eq!(p.nth_address(0), Some(u32::from(Ipv4Addr::new(10, 0, 0, 0))));
        assert_eq!(p.nth_address(3), Some(u32::from(Ipv4Addr::new(10, 0, 0, 3))));
        assert_eq!(p.nth_address(4), None);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_display_parse(addr: u32, len in 0u8..=32) {
            let p = Ipv4Prefix::new(addr, len).unwrap();
            let back: Ipv4Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_split_partitions_addresses(addr: u32, len in 0u8..32) {
            let p = Ipv4Prefix::new(addr, len).unwrap();
            let (lo, hi) = p.split().unwrap();
            prop_assert_eq!(lo.num_addresses() + hi.num_addresses(), p.num_addresses());
            prop_assert!(p.covers(lo) && p.covers(hi));
            prop_assert!(!lo.overlaps(hi));
            prop_assert_eq!(hi.network(), lo.last_address().wrapping_add(1));
        }

        #[test]
        fn prop_contains_consistent_with_bounds(addr: u32, len in 0u8..=32, ip: u32) {
            let p = Ipv4Prefix::new(addr, len).unwrap();
            let inside = ip >= p.network() && ip <= p.last_address();
            prop_assert_eq!(p.contains(ip), inside);
        }

        #[test]
        fn prop_covers_is_partial_order(a: u32, la in 0u8..=32, b: u32, lb in 0u8..=32) {
            let pa = Ipv4Prefix::new(a, la).unwrap();
            let pb = Ipv4Prefix::new(b, lb).unwrap();
            if pa.covers(pb) && pb.covers(pa) {
                prop_assert_eq!(pa, pb);
            }
        }
    }
}
