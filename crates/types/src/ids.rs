//! Opaque entity identifiers.
//!
//! Two distinct identifier spaces exist in the system, mirroring a
//! distinction that matters in the paper:
//!
//! * [`CompanyId`] identifies a *legal entity* in the ground-truth world —
//!   a telco, a holding company, a sovereign wealth fund, or a government.
//!   The ownership graph is expressed over companies.
//! * [`OrgId`] identifies an *inferred organization cluster* in AS2Org-style
//!   data: the unit "a set of sibling ASNs believed to belong to one
//!   organization". Inference is imperfect, so Org clusters do not map 1:1
//!   to companies — the paper reports contributing corrections to AS2Org for
//!   exactly this reason (§6).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a legal entity (company, fund, or government) in the
/// ground-truth world.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CompanyId(pub u32);

impl CompanyId {
    /// Raw value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CompanyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{:05}", self.0)
    }
}

impl fmt::Debug for CompanyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{:05}", self.0)
    }
}

/// Identifier of an AS2Org-style inferred organization cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OrgId(pub u32);

impl OrgId {
    /// Raw value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG{:05}", self.0)
    }
}

impl fmt::Debug for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG{:05}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CompanyId(7).to_string(), "C00007");
        assert_eq!(OrgId(123).to_string(), "ORG00123");
    }

    #[test]
    fn ids_are_ordered_numerically() {
        assert!(CompanyId(2) < CompanyId(10));
        assert!(OrgId(2) < OrgId(10));
    }
}
