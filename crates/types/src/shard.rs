//! Std-only sharded execution for deterministic parallel stages.
//!
//! The registry is unreachable from the build environment, so this module
//! deliberately uses nothing but `std::thread::scope`: work is split into
//! at most `threads` *contiguous* chunks, each chunk is mapped on its own
//! scoped worker thread, and the per-chunk results are returned **in
//! chunk order**. Contiguity plus ordered collection is what makes every
//! consumer (the sharded pipeline in `soi-core`, CTI contribution replay
//! in `soi-cti`, per-country world generation in `soi-worldgen`)
//! deterministic:
//!
//! * integer accumulators (geolocation address counts) merge by addition,
//!   which is exact and order-independent;
//! * floating-point accumulators are never summed shard-wise — shards
//!   emit ordered contribution lists that the caller replays in the
//!   sequential order (see `soi-cti`), so every `f64` addition happens in
//!   the same order as the single-threaded run and produces the same
//!   bits;
//! * set/flag unions (candidate source flags) are idempotent and
//!   commutative, so shard order cannot matter;
//! * globally-stateful folds (the worldgen address allocator, cross-chunk
//!   dedup) are replayed sequentially over the ordered chunk results, so
//!   the global state evolves exactly as in the single-threaded run.
//!
//! With `threads <= 1` (or a single item) the closure runs inline on the
//! caller's thread over one chunk — no worker is spawned, which makes the
//! one-thread parallel entry points *exactly* the sequential paths rather
//! than one-thread simulations of the parallel ones.

/// Resolves a user-facing thread-count knob: `0` means "one worker per
/// available core", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

/// Splits `items` into at most `threads` contiguous chunks, applies `f`
/// to each chunk (on scoped worker threads when `threads > 1`), and
/// returns the chunk results in chunk order.
///
/// The chunk size is `ceil(len / threads)`, so every invocation with the
/// same `items` and `threads` produces the same chunking — callers can
/// rely on result `i` covering the same item range every run. An empty
/// `items` yields an empty result vector.
///
/// Panics from a worker propagate to the caller (a half-merged result is
/// never observable).
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    let chunk = items.len().div_ceil(threads);
    if threads == 1 {
        // Inline: the sequential path, byte for byte.
        return items.chunks(chunk).map(|slice| f(slice)).collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|slice| s.spawn(move || f(slice))).collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_results_come_back_in_order() {
        let items: Vec<u32> = (0..101).collect();
        for threads in [1, 2, 4, 8, 200] {
            let sums = map_chunks(&items, threads, |slice| slice.iter().sum::<u32>());
            assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>(), "threads={threads}");
            // Chunks are contiguous and ordered: replaying the chunk map
            // over item identity reproduces the input.
            let ids = map_chunks(&items, threads, |slice| slice.to_vec());
            assert_eq!(ids.concat(), items, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        // One chunk, executed on the caller thread.
        let caller = std::thread::current().id();
        let seen = map_chunks(&[1, 2, 3], 1, |_| std::thread::current().id());
        assert_eq!(seen, vec![caller]);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out: Vec<u32> = map_chunks(&[] as &[u32], 4, |slice| slice.iter().sum());
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
