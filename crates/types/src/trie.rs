//! A binary trie keyed by IPv4 prefixes with longest-prefix-match lookup.
//!
//! This is the core data structure behind both the geolocation database
//! (country lookup per address, honouring "not covered by a more specific
//! prefix" semantics from the CTI definition in Appendix G) and the
//! prefix-to-AS table derived from BGP RIBs.

use crate::prefix::Ipv4Prefix;

#[derive(Clone, Debug)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node { value: None, children: [None, None] }
    }

    fn is_empty_leaf(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A map from IPv4 prefixes to values supporting exact and
/// longest-prefix-match lookups.
///
/// Unlike a `HashMap<Ipv4Prefix, T>`, lookups by *address* return the most
/// specific covering prefix — the semantics of a router's FIB and of
/// geolocation databases.
///
/// ```
/// use soi_types::{Ipv4Prefix, PrefixTrie};
///
/// let mut fib = PrefixTrie::new();
/// fib.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// fib.insert("10.1.0.0/16".parse().unwrap(), "specific");
/// let ip = u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3));
/// assert_eq!(fib.lookup(ip).unwrap().1, &"specific");
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie { root: Node::new(), len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth as u32)) & 1) as usize
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value stored exactly at `prefix`.
    ///
    /// Empty branches left behind are pruned so memory usage tracks the
    /// live prefix set.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<T> {
        fn rec<T>(node: &mut Node<T>, addr: u32, len: u8, depth: u8) -> Option<T> {
            if depth == len {
                return node.value.take();
            }
            let b = PrefixTrie::<T>::bit(addr, depth);
            let child = node.children[b].as_mut()?;
            let out = rec(child, addr, len, depth + 1);
            if child.is_empty_leaf() {
                node.children[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix.network(), prefix.len(), 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Returns the value stored exactly at `prefix`, if any.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            node = node.children[Self::bit(prefix.network(), depth)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix-match: the most specific stored prefix covering `ip`,
    /// together with its value.
    pub fn lookup(&self, ip: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            match node.children[Self::bit(ip, depth)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            let p = Ipv4Prefix::new(ip, len).expect("len <= 32");
            (p, v)
        })
    }

    /// The most specific stored prefix covering `prefix` itself (i.e. with
    /// length `<= prefix.len()`). Used to answer "which announced prefix
    /// does this more-specific fall under?".
    pub fn lookup_covering(&self, prefix: Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for depth in 0..prefix.len() {
            match node.children[Self::bit(prefix.network(), depth)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            let p = Ipv4Prefix::new(prefix.network(), len).expect("len <= 32");
            (p, v)
        })
    }

    /// True if any stored prefix is a strict more-specific of `prefix`.
    pub fn has_more_specific(&self, prefix: Ipv4Prefix) -> bool {
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            match node.children[Self::bit(prefix.network(), depth)].as_deref() {
                Some(child) => node = child,
                None => return false,
            }
        }
        // Any value strictly below this node is a more-specific.
        fn subtree_has_value<T>(node: &Node<T>) -> bool {
            node.children.iter().flatten().any(|c| c.value.is_some() || subtree_has_value(c))
        }
        subtree_has_value(node)
    }

    /// Iterates over all `(prefix, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, T>(
            node: &'a Node<T>,
            addr: u32,
            depth: u8,
            out: &mut Vec<(Ipv4Prefix, &'a T)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((Ipv4Prefix::new(addr, depth).expect("depth <= 32"), v));
            }
            if depth == 32 {
                return;
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, addr, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, addr | (1 << (31 - depth as u32)), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn exact_get_and_replace() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "big");
        t.insert(p("10.1.0.0/16"), "mid");
        t.insert(p("10.1.2.0/24"), "small");
        let ip = u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(t.lookup(ip).unwrap().1, &"small");
        let ip = u32::from(std::net::Ipv4Addr::new(10, 1, 9, 9));
        assert_eq!(t.lookup(ip).unwrap().1, &"mid");
        let ip = u32::from(std::net::Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(t.lookup(ip).unwrap().1, &"big");
        let ip = u32::from(std::net::Ipv4Addr::new(11, 0, 0, 1));
        assert!(t.lookup(ip).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 0u8);
        assert_eq!(t.lookup(u32::MAX).unwrap().1, &0);
        assert_eq!(t.lookup(0).unwrap().0, Ipv4Prefix::DEFAULT);
    }

    #[test]
    fn remove_prunes_and_reports() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        let ip = u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(t.lookup(ip).unwrap().1, &1);
    }

    #[test]
    fn covering_lookup_and_more_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.2.0/24"), 2);
        assert_eq!(t.lookup_covering(p("10.1.0.0/16")).unwrap().0, p("10.0.0.0/8"));
        assert!(t.has_more_specific(p("10.1.0.0/16")));
        assert!(t.has_more_specific(p("10.0.0.0/8")));
        assert!(!t.has_more_specific(p("10.1.2.0/24")));
        assert!(!t.has_more_specific(p("11.0.0.0/8")));
    }

    #[test]
    fn iter_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.168.0.0/16"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.64.0.0/10"), 2);
        let got: Vec<_> = t.iter().map(|(pfx, _)| pfx.to_string()).collect();
        assert_eq!(got, vec!["10.0.0.0/8", "10.64.0.0/10", "192.168.0.0/16"]);
    }

    proptest! {
        #[test]
        fn prop_behaves_like_hashmap_on_exact_ops(
            ops in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u16>(), any::<bool>()), 0..200)
        ) {
            let mut trie = PrefixTrie::new();
            let mut map: HashMap<Ipv4Prefix, u16> = HashMap::new();
            for (addr, len, val, is_insert) in ops {
                let pfx = Ipv4Prefix::new(addr, len).unwrap();
                if is_insert {
                    prop_assert_eq!(trie.insert(pfx, val), map.insert(pfx, val));
                } else {
                    prop_assert_eq!(trie.remove(pfx), map.remove(&pfx));
                }
                prop_assert_eq!(trie.len(), map.len());
            }
            for (pfx, val) in &map {
                prop_assert_eq!(trie.get(*pfx), Some(val));
            }
        }

        #[test]
        fn prop_lookup_returns_longest_cover(
            entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..60),
            ip: u32,
        ) {
            let mut trie = PrefixTrie::new();
            let mut set = Vec::new();
            for (i, (addr, len)) in entries.into_iter().enumerate() {
                let pfx = Ipv4Prefix::new(addr, len).unwrap();
                trie.insert(pfx, i);
                set.push(pfx);
            }
            let expected = set.iter().filter(|pfx| pfx.contains(ip)).map(|p| p.len()).max();
            match trie.lookup(ip) {
                Some((found, _)) => prop_assert_eq!(Some(found.len()), expected),
                None => prop_assert_eq!(expected, None),
            }
        }
    }
}
