//! Content checksums for persisted artifacts.
//!
//! The snapshot format (see `soi-core`) stores a checksum of its payload so
//! a serving process can refuse a corrupt or tampered file instead of
//! building indexes over garbage. FNV-1a is used deliberately: it is an
//! *integrity* check against accidental corruption (truncated writes, bit
//! rot, concurrent writers), not a cryptographic signature, and it keeps
//! the workspace dependency-free. 64-bit FNV-1a over JSON payloads in the
//! megabyte range has a negligible accidental-collision probability.

/// Streaming 64-bit FNV-1a hasher.
///
/// ```
/// use soi_types::Fnv1a64;
///
/// let mut h = Fnv1a64::new();
/// h.update(b"foo");
/// h.update(b"bar");
/// assert_eq!(h.finish(), soi_types::fnv1a64(b"foobar"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64 { state: FNV_OFFSET }
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest over everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

/// One-shot 64-bit FNV-1a of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the FNV specification's test suite.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"hello ");
        h.update(b"");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = fnv1a64(b"snapshot payload");
        assert_ne!(base, fnv1a64(b"snapshot paylobd"));
        assert_ne!(base, fnv1a64(b"snapshot payloa"));
        assert_ne!(base, fnv1a64(b"snapshot payload "));
    }
}
