//! Exact fixed-point equity arithmetic.
//!
//! The paper adopts the IMF definition: a firm is state-owned if a
//! government owns **at least 50%** of its equity, where holdings may be
//! aggregated across several state-controlled vehicles (the Telekom Malaysia
//! example sums three government funds). A threshold comparison like this
//! must not depend on floating-point rounding, so equity is represented in
//! basis points (1/100 of a percent) as an integer.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An equity share in basis points: `Equity(10_000)` is 100%.
///
/// Values above 100% are unrepresentable by construction: the arithmetic
/// saturates at [`Equity::FULL`], which is the correct behaviour when summing
/// noisy shareholder lists.
///
/// ```
/// use soi_types::Equity;
///
/// // Telekom Malaysia: three state funds aggregate past the IMF line.
/// let total: Equity = [26.2, 11.2, 15.4]
///     .into_iter()
///     .map(Equity::from_percent_f64)
///     .sum();
/// assert!(total.is_majority());
/// assert_eq!(total.to_string(), "52.8%");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Equity(u16);

impl Equity {
    /// 0% ownership.
    pub const ZERO: Equity = Equity(0);
    /// 100% ownership.
    pub const FULL: Equity = Equity(10_000);
    /// The IMF majority threshold: 50%.
    pub const MAJORITY: Equity = Equity(5_000);

    /// Constructs from basis points, clamping to 100%.
    pub fn from_bp(bp: u32) -> Self {
        Equity(bp.min(10_000) as u16)
    }

    /// Constructs from whole percent, clamping to 100%.
    pub fn from_percent(pct: u32) -> Self {
        Self::from_bp(pct.saturating_mul(100))
    }

    /// Constructs from a fractional percentage (e.g. `54.7`), rounding to the
    /// nearest basis point and clamping to [0%, 100%]. Intended for ingesting
    /// quotes like "Government of Norway (54,7%)"; internal math never
    /// touches floats.
    pub fn from_percent_f64(pct: f64) -> Self {
        if !pct.is_finite() || pct <= 0.0 {
            return Equity::ZERO;
        }
        Self::from_bp((pct * 100.0).round() as u32)
    }

    /// Raw basis points.
    #[inline]
    pub fn bp(self) -> u16 {
        self.0
    }

    /// The share as a fraction in [0, 1] (for reporting only).
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 10_000.0
    }

    /// True if this share meets the IMF majority rule (>= 50%).
    #[inline]
    pub fn is_majority(self) -> bool {
        self >= Equity::MAJORITY
    }

    /// True if the share is positive but below the majority threshold —
    /// the paper's "minority state-owned" category.
    #[inline]
    pub fn is_minority(self) -> bool {
        self > Equity::ZERO && self < Equity::MAJORITY
    }

    /// Multiplies two shares (e.g. owning 60% of a company that owns 80% of
    /// a target yields 48% of the target). Rounds half-up to the nearest
    /// basis point.
    pub fn scale(self, other: Equity) -> Equity {
        let prod = u32::from(self.0) * u32::from(other.0);
        Equity::from_bp((prod + 5_000) / 10_000)
    }

    /// Saturating addition (aggregate holdings of multiple state vehicles).
    pub fn saturating_add(self, other: Equity) -> Equity {
        Equity::from_bp(u32::from(self.0) + u32::from(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Equity) -> Equity {
        Equity(self.0.saturating_sub(other.0))
    }
}

impl Add for Equity {
    type Output = Equity;
    fn add(self, rhs: Equity) -> Equity {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Equity {
    fn add_assign(&mut self, rhs: Equity) {
        *self = *self + rhs;
    }
}

impl Sub for Equity {
    type Output = Equity;
    fn sub(self, rhs: Equity) -> Equity {
        self.saturating_sub(rhs)
    }
}

impl Sum for Equity {
    fn sum<I: Iterator<Item = Equity>>(iter: I) -> Equity {
        iter.fold(Equity::ZERO, Equity::saturating_add)
    }
}

impl fmt::Display for Equity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / 100;
        let frac = self.0 % 100;
        if frac == 0 {
            write!(f, "{whole}%")
        } else if frac.is_multiple_of(10) {
            write!(f, "{whole}.{}%", frac / 10)
        } else {
            write!(f, "{whole}.{frac:02}%")
        }
    }
}

impl fmt::Debug for Equity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_clamping() {
        assert_eq!(Equity::from_percent(50), Equity::MAJORITY);
        assert_eq!(Equity::from_percent(150), Equity::FULL);
        assert_eq!(Equity::from_bp(20_000), Equity::FULL);
        assert_eq!(Equity::from_percent_f64(54.7).bp(), 5_470);
        assert_eq!(Equity::from_percent_f64(-1.0), Equity::ZERO);
        assert_eq!(Equity::from_percent_f64(f64::NAN), Equity::ZERO);
    }

    #[test]
    fn majority_rule_is_inclusive_at_exactly_50() {
        assert!(Equity::from_bp(5_000).is_majority());
        assert!(!Equity::from_bp(4_999).is_majority());
        assert!(Equity::from_bp(4_999).is_minority());
        assert!(!Equity::ZERO.is_minority());
        assert!(!Equity::FULL.is_minority());
    }

    #[test]
    fn telekom_malaysia_fund_aggregation() {
        // Three government vehicles whose aggregate crosses 50% even though
        // none does alone — the paper's motivating example.
        let khazanah = Equity::from_percent_f64(26.2);
        let amanah = Equity::from_percent_f64(11.2);
        let epf = Equity::from_percent_f64(15.4);
        let total: Equity = [khazanah, amanah, epf].into_iter().sum();
        assert!(total.is_majority());
        assert!(!khazanah.is_majority());
    }

    #[test]
    fn indirect_chain_scaling() {
        // State owns 60% of holding; holding owns 80% of telco -> 48%.
        let through = Equity::from_percent(60).scale(Equity::from_percent(80));
        assert_eq!(through, Equity::from_percent(48));
        assert!(!through.is_majority());
        assert_eq!(Equity::FULL.scale(Equity::from_percent(51)), Equity::from_percent(51));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Equity::from_percent(54).to_string(), "54%");
        assert_eq!(Equity::from_bp(5_470).to_string(), "54.7%");
        assert_eq!(Equity::from_bp(5_473).to_string(), "54.73%");
        assert_eq!(Equity::from_bp(5_403).to_string(), "54.03%");
    }

    proptest! {
        #[test]
        fn prop_addition_saturates_and_commutes(a in 0u32..20_000, b in 0u32..20_000) {
            let (ea, eb) = (Equity::from_bp(a), Equity::from_bp(b));
            prop_assert_eq!(ea + eb, eb + ea);
            prop_assert!(ea + eb <= Equity::FULL);
        }

        #[test]
        fn prop_scale_never_exceeds_factors(a in 0u32..=10_000, b in 0u32..=10_000) {
            let (ea, eb) = (Equity::from_bp(a), Equity::from_bp(b));
            let s = ea.scale(eb);
            // Product of fractions <= min of fractions (allow 1bp rounding).
            prop_assert!(s.bp() <= ea.bp().max(1).min(eb.bp().max(1)).saturating_add(1));
        }

        #[test]
        fn prop_scale_by_full_is_identity(a in 0u32..=10_000) {
            let e = Equity::from_bp(a);
            prop_assert_eq!(e.scale(Equity::FULL), e);
            prop_assert_eq!(Equity::FULL.scale(e), e);
        }
    }
}
