//! Autonomous System Numbers.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::SoiError;

/// An Autonomous System Number.
///
/// ASNs are the paper's unit of analysis: the final dataset maps state-owned
/// organizations to the set of ASNs they control. We support the full 32-bit
/// ASN space (RFC 6793); the reserved value 0 (RFC 7607) is never assigned by
/// the world generator but is representable so parsers stay total.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN 0 (RFC 7607). Used as a sentinel in a few internal
    /// tables; never originates prefixes.
    pub const RESERVED: Asn = Asn(0);

    /// Returns the raw 32-bit value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// True if this is a 16-bit ("legacy") ASN.
    #[inline]
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// True if the ASN falls in a range reserved for private use
    /// (64512-65534 and 4200000000-4294967294, RFC 6996).
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl FromStr for Asn {
    type Err = SoiError;

    /// Parses either a bare number (`"2119"`) or the conventional `AS`
    /// prefix form (`"AS2119"`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Byte-wise case-insensitive prefix check: the prefix is two
        // ASCII bytes, so `&s[2..]` always lands on a char boundary
        // (a `s[..2]`-style slice would panic on multi-byte input).
        let digits = match s.as_bytes() {
            [b'A' | b'a', b'S' | b's', ..] => &s[2..],
            _ => s,
        };
        digits.parse::<u32>().map(Asn).map_err(|_| SoiError::Parse(format!("invalid ASN: {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_as_prefix() {
        assert_eq!(Asn(2119).to_string(), "AS2119");
    }

    #[test]
    fn parses_bare_and_prefixed() {
        assert_eq!("2119".parse::<Asn>().unwrap(), Asn(2119));
        assert_eq!("AS2119".parse::<Asn>().unwrap(), Asn(2119));
        assert_eq!("as4788".parse::<Asn>().unwrap(), Asn(4788));
    }

    #[test]
    fn prefix_is_case_insensitive_in_every_combination() {
        // Regression: "aS" and "As" are as valid as "AS"/"as"; the old
        // parser enumerated literal prefixes and missed "aS".
        for prefix in ["AS", "as", "As", "aS"] {
            assert_eq!(format!("{prefix}2119").parse::<Asn>().unwrap(), Asn(2119), "{prefix}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("ASX".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS-5".parse::<Asn>().is_err());
        // Multi-byte UTF-8 must be rejected, not panicked on.
        assert!("€2119".parse::<Asn>().is_err());
        assert!("aß1".parse::<Asn>().is_err());
    }

    #[test]
    fn bit_width_classification() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
        assert!(!Asn(132602).is_private());
        assert!(Asn(64512).is_private());
        assert!(Asn(4_200_000_000).is_private());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(9) < Asn(10));
        assert!(Asn(65536) > Asn(65535));
    }
}
