//! Shared error type.

use std::fmt;

/// Errors produced across the workspace.
///
/// The workspace is a batch-analysis library; most APIs are total over their
/// inputs and return values rather than results. Errors are reserved for
/// genuinely fallible operations: parsing external representations,
/// inconsistent configurations, and dataset export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoiError {
    /// A textual representation failed to parse.
    Parse(String),
    /// A configuration is internally inconsistent (e.g. thresholds out of
    /// range, empty monitor set).
    InvalidConfig(String),
    /// A referenced entity does not exist (dangling ASN, unknown country).
    NotFound(String),
    /// A structural invariant was violated (e.g. an ownership cycle where a
    /// DAG is required).
    Invariant(String),
}

impl fmt::Display for SoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoiError::Parse(m) => write!(f, "parse error: {m}"),
            SoiError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SoiError::NotFound(m) => write!(f, "not found: {m}"),
            SoiError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for SoiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = SoiError::Parse("bad ASN".into());
        assert_eq!(e.to_string(), "parse error: bad ASN");
        let e = SoiError::NotFound("AS65000".into());
        assert!(e.to_string().contains("AS65000"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SoiError::Invariant("cycle".into()));
    }
}
