//! Legal entities and their business classification.

use serde::{Deserialize, Serialize};
use soi_types::{CompanyId, CountryCode};

/// Whether an Internet operator serves at the national (federal) level or
/// only a subnational jurisdiction (state, province, municipality, city).
///
/// The paper restricts its dataset to national-level operators and excludes
/// everything below (§5.3), both to bound the problem and to avoid coverage
/// bias across countries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OperatorScope {
    /// Operates at federal/country level.
    National,
    /// Operates only within a first-level (or smaller) administrative
    /// division.
    Subnational,
}

/// What kind of connectivity an operator sells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Residential/business access (eyeball network).
    Access,
    /// Transit to other ASes.
    Transit,
    /// Both access and transit.
    Both,
}

impl ServiceKind {
    /// True if the operator sells transit.
    pub fn sells_transit(self) -> bool {
        matches!(self, ServiceKind::Transit | ServiceKind::Both)
    }

    /// True if the operator serves end users.
    pub fn serves_access(self) -> bool {
        matches!(self, ServiceKind::Access | ServiceKind::Both)
    }
}

/// Business classification of a legal entity.
///
/// Every category the paper's §5.3 exclusion rules (and Appendix E) mention
/// is representable, so the confirmation stage can filter precisely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Business {
    /// A company offering unrestricted Internet access and/or transit.
    InternetOperator {
        /// Federal vs. subnational reach.
        scope: OperatorScope,
        /// Access, transit, or both.
        service: ServiceKind,
    },
    /// University networks and academic backbones (excluded: they do not
    /// compete in open access/transit markets).
    AcademicNetwork,
    /// Networks connecting government offices only (excluded; e.g. a
    /// defence ministry's AS).
    GovernmentAgencyNetwork,
    /// NIC-style bodies running ccTLD/registry infrastructure without
    /// selling connectivity (excluded).
    InternetAdministration,
    /// Telecommunication businesses with no Internet service (excluded).
    NonInternetTelco,
    /// An ordinary company operating its own AS (bank, hosting shop,
    /// enterprise); never an Internet operator candidate but bulks out the
    /// AS-level topology like the real Internet's stub networks.
    Enterprise,
    /// Equipment manufacturers and similar (excluded).
    HardwareVendor,
    /// A pure holding vehicle: sovereign wealth funds, pension funds,
    /// state asset managers, private holding companies.
    Holding,
    /// A sovereign state itself (the root of state-control chains).
    Government,
    /// The aggregate of dispersed private/free-float shareholders.
    PrivateInvestorPool,
}

impl Business {
    /// True if this entity is an Internet operator in the paper's sense —
    /// the only category eligible for the final dataset.
    pub fn is_internet_operator(self) -> bool {
        matches!(self, Business::InternetOperator { .. })
    }

    /// True for a *national-level* Internet operator (the paper's full
    /// eligibility test on the business axis).
    pub fn is_eligible_operator(self) -> bool {
        matches!(self, Business::InternetOperator { scope: OperatorScope::National, .. })
    }
}

/// A legal entity in the ground-truth world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Company {
    /// Unique identifier.
    pub id: CompanyId,
    /// Commercial/brand name ("Telenor").
    pub name: String,
    /// Registered legal name as it would appear in WHOIS ("Telenor Norge
    /// AS") — often diverges from the brand, which is one of the paper's
    /// mapping challenges.
    pub legal_name: String,
    /// Country of registration.
    pub country: CountryCode,
    /// Business classification.
    pub business: Business,
}

impl Company {
    /// Shorthand constructor.
    pub fn new(
        id: CompanyId,
        name: impl Into<String>,
        legal_name: impl Into<String>,
        country: CountryCode,
        business: Business,
    ) -> Self {
        Company { id, name: name.into(), legal_name: legal_name.into(), country, business }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_types::{cc, CompanyId};

    #[test]
    fn eligibility_rules() {
        let national = Business::InternetOperator {
            scope: OperatorScope::National,
            service: ServiceKind::Both,
        };
        let municipal = Business::InternetOperator {
            scope: OperatorScope::Subnational,
            service: ServiceKind::Access,
        };
        assert!(national.is_eligible_operator());
        assert!(municipal.is_internet_operator());
        assert!(!municipal.is_eligible_operator());
        assert!(!Business::AcademicNetwork.is_eligible_operator());
        assert!(!Business::Government.is_internet_operator());
    }

    #[test]
    fn service_kinds() {
        assert!(ServiceKind::Transit.sells_transit());
        assert!(!ServiceKind::Transit.serves_access());
        assert!(ServiceKind::Both.sells_transit() && ServiceKind::Both.serves_access());
        assert!(ServiceKind::Access.serves_access());
    }

    #[test]
    fn company_construction() {
        let c = Company::new(
            CompanyId(1),
            "Telenor",
            "Telenor Norge AS",
            cc("NO"),
            Business::InternetOperator {
                scope: OperatorScope::National,
                service: ServiceKind::Both,
            },
        );
        assert_eq!(c.name, "Telenor");
        assert_ne!(c.name, c.legal_name);
    }
}
