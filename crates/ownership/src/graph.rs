//! The validated shareholding graph.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use soi_types::{CompanyId, Equity, SoiError};

use crate::company::Company;

/// One shareholder position: `holder` owns `equity` of `held`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shareholding {
    /// The owning entity.
    pub holder: CompanyId,
    /// The owned entity.
    pub held: CompanyId,
    /// Fraction of `held`'s equity.
    pub equity: Equity,
}

/// Builder for [`OwnershipGraph`].
#[derive(Default, Clone, Debug)]
pub struct OwnershipGraphBuilder {
    companies: Vec<Company>,
    holdings: Vec<Shareholding>,
}

impl OwnershipGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a company. IDs must be unique (checked at build).
    pub fn add_company(&mut self, company: Company) -> &mut Self {
        self.companies.push(company);
        self
    }

    /// Records that `holder` owns `equity` of `held`.
    pub fn add_holding(&mut self, holder: CompanyId, held: CompanyId, equity: Equity) -> &mut Self {
        self.holdings.push(Shareholding { holder, held, equity });
        self
    }

    /// Validates and freezes the graph.
    ///
    /// Rejects duplicate company IDs, holdings referencing unknown
    /// companies, self-holdings, duplicate holder→held pairs, per-company
    /// equity totals above 100%, and ownership cycles (cross-holdings are
    /// rare in reality and poison control computation; the generator never
    /// produces them, so one here is a bug to surface, not data to accept).
    pub fn build(self) -> Result<OwnershipGraph, SoiError> {
        let mut index: HashMap<CompanyId, usize> = HashMap::with_capacity(self.companies.len());
        for (i, c) in self.companies.iter().enumerate() {
            if index.insert(c.id, i).is_some() {
                return Err(SoiError::Invariant(format!("duplicate company id {}", c.id)));
            }
        }

        let mut seen_pairs = std::collections::HashSet::new();
        let mut into_total: HashMap<CompanyId, Equity> = HashMap::new();
        for h in &self.holdings {
            if h.holder == h.held {
                return Err(SoiError::Invariant(format!("{} holds itself", h.holder)));
            }
            for id in [h.holder, h.held] {
                if !index.contains_key(&id) {
                    return Err(SoiError::NotFound(format!("holding references unknown {id}")));
                }
            }
            if !seen_pairs.insert((h.holder, h.held)) {
                return Err(SoiError::Invariant(format!(
                    "duplicate holding {} -> {}",
                    h.holder, h.held
                )));
            }
            let total = into_total.entry(h.held).or_insert(Equity::ZERO);
            let new_total = u32::from(total.bp()) + u32::from(h.equity.bp());
            if new_total > u32::from(Equity::FULL.bp()) {
                return Err(SoiError::Invariant(format!("shareholders of {} exceed 100%", h.held)));
            }
            *total = Equity::from_bp(new_total);
        }

        // Adjacency.
        let n = self.companies.len();
        let mut holders_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut holdings_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (hi, h) in self.holdings.iter().enumerate() {
            holders_of[index[&h.held]].push(hi);
            holdings_of[index[&h.holder]].push(hi);
        }

        let graph = OwnershipGraph {
            companies: self.companies,
            holdings: self.holdings,
            index,
            holders_of,
            holdings_of,
        };
        graph.check_acyclic()?;
        Ok(graph)
    }
}

/// An immutable, validated shareholding DAG.
#[derive(Clone, Debug)]
pub struct OwnershipGraph {
    companies: Vec<Company>,
    holdings: Vec<Shareholding>,
    index: HashMap<CompanyId, usize>,
    /// Per company (by position), indices into `holdings` where it is held.
    holders_of: Vec<Vec<usize>>,
    /// Per company (by position), indices into `holdings` where it holds.
    holdings_of: Vec<Vec<usize>>,
}

impl OwnershipGraph {
    /// All companies.
    pub fn companies(&self) -> &[Company] {
        &self.companies
    }

    /// All shareholdings.
    pub fn holdings(&self) -> &[Shareholding] {
        &self.holdings
    }

    /// Looks up a company.
    pub fn company(&self, id: CompanyId) -> Option<&Company> {
        self.index.get(&id).map(|&i| &self.companies[i])
    }

    pub(crate) fn position(&self, id: CompanyId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    pub(crate) fn company_at(&self, pos: usize) -> &Company {
        &self.companies[pos]
    }

    /// Who holds shares of `id`.
    pub fn holders(&self, id: CompanyId) -> Vec<Shareholding> {
        match self.index.get(&id) {
            Some(&i) => self.holders_of[i].iter().map(|&hi| self.holdings[hi]).collect(),
            None => Vec::new(),
        }
    }

    /// What `id` holds shares of.
    pub fn portfolio(&self, id: CompanyId) -> Vec<Shareholding> {
        match self.index.get(&id) {
            Some(&i) => self.holdings_of[i].iter().map(|&hi| self.holdings[hi]).collect(),
            None => Vec::new(),
        }
    }

    /// The single shareholder holding >= 50% of `id`, if one exists.
    pub fn majority_holder(&self, id: CompanyId) -> Option<Shareholding> {
        self.holders(id).into_iter().find(|h| h.equity.is_majority())
    }

    /// Companies in which `id` directly holds >= 50%.
    pub fn majority_subsidiaries(&self, id: CompanyId) -> Vec<CompanyId> {
        self.portfolio(id).into_iter().filter(|h| h.equity.is_majority()).map(|h| h.held).collect()
    }

    /// Free float: equity of `id` not accounted for by recorded holders.
    pub fn unattributed_equity(&self, id: CompanyId) -> Equity {
        let held: Equity = self.holders(id).iter().map(|h| h.equity).sum();
        Equity::FULL - held
    }

    fn check_acyclic(&self) -> Result<(), SoiError> {
        // Kahn over holder -> held edges.
        let n = self.companies.len();
        let mut indeg = vec![0u32; n];
        for h in &self.holdings {
            indeg[self.index[&h.held]] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &hi in &self.holdings_of[i] {
                let held = self.index[&self.holdings[hi].held];
                indeg[held] -= 1;
                if indeg[held] == 0 {
                    queue.push(held);
                }
            }
        }
        if visited == n {
            Ok(())
        } else {
            Err(SoiError::Invariant("ownership cycle detected".into()))
        }
    }

    /// Companies in topological order (holders before held) — used by the
    /// control fixpoint so a single pass suffices.
    pub(crate) fn topo_order(&self) -> Vec<usize> {
        let n = self.companies.len();
        let mut indeg = vec![0u32; n];
        for h in &self.holdings {
            indeg[self.index[&h.held]] += 1;
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &hi in &self.holdings_of[i] {
                let held = self.index[&self.holdings[hi].held];
                indeg[held] -= 1;
                if indeg[held] == 0 {
                    queue.push_back(held);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph validated acyclic at build");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::{Business, Company};
    use soi_types::cc;

    fn gov(id: u32, country: &str) -> Company {
        Company::new(
            CompanyId(id),
            format!("Government of {country}"),
            format!("State of {country}"),
            country.parse().unwrap(),
            Business::Government,
        )
    }

    fn telco(id: u32, name: &str, country: &str) -> Company {
        Company::new(
            CompanyId(id),
            name,
            format!("{name} Holdings"),
            country.parse().unwrap(),
            Business::InternetOperator {
                scope: crate::company::OperatorScope::National,
                service: crate::company::ServiceKind::Both,
            },
        )
    }

    fn pct(p: u32) -> Equity {
        Equity::from_percent(p)
    }

    #[test]
    fn builds_and_queries() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(telco(2, "Telenor", "NO"));
        b.add_holding(CompanyId(1), CompanyId(2), pct(54));
        let g = b.build().unwrap();
        assert_eq!(g.companies().len(), 2);
        assert_eq!(g.holders(CompanyId(2)).len(), 1);
        assert_eq!(g.majority_holder(CompanyId(2)).unwrap().holder, CompanyId(1));
        assert_eq!(g.majority_subsidiaries(CompanyId(1)), vec![CompanyId(2)]);
        assert_eq!(g.unattributed_equity(CompanyId(2)), pct(46));
        assert_eq!(g.company(CompanyId(2)).unwrap().country, cc("NO"));
        assert!(g.company(CompanyId(9)).is_none());
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(gov(1, "SE"));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_dangling_and_self_holdings() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_holding(CompanyId(1), CompanyId(2), pct(10));
        assert!(b.build().is_err());

        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_holding(CompanyId(1), CompanyId(1), pct(10));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_overallocation_and_duplicates() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(gov(2, "SE"));
        b.add_company(telco(3, "X", "NO"));
        b.add_holding(CompanyId(1), CompanyId(3), pct(60));
        b.add_holding(CompanyId(2), CompanyId(3), pct(60));
        assert!(b.build().is_err());

        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(telco(3, "X", "NO"));
        b.add_holding(CompanyId(1), CompanyId(3), pct(30));
        b.add_holding(CompanyId(1), CompanyId(3), pct(30));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_cycles() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(telco(1, "A", "NO"));
        b.add_company(telco(2, "B", "NO"));
        b.add_holding(CompanyId(1), CompanyId(2), pct(30));
        b.add_holding(CompanyId(2), CompanyId(1), pct(30));
        assert!(b.build().is_err());
    }

    #[test]
    fn exactly_100_percent_allowed() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(gov(2, "SE"));
        b.add_company(telco(3, "X", "NO"));
        b.add_holding(CompanyId(1), CompanyId(3), pct(50));
        b.add_holding(CompanyId(2), CompanyId(3), pct(50));
        let g = b.build().unwrap();
        assert_eq!(g.unattributed_equity(CompanyId(3)), Equity::ZERO);
    }

    #[test]
    fn topo_order_holders_first() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(gov(1, "NO"));
        b.add_company(telco(2, "Hold", "NO"));
        b.add_company(telco(3, "Op", "NO"));
        b.add_holding(CompanyId(1), CompanyId(2), pct(100));
        b.add_holding(CompanyId(2), CompanyId(3), pct(60));
        let g = b.build().unwrap();
        let order = g.topo_order();
        let pos =
            |id: u32| order.iter().position(|&i| g.company_at(i).id == CompanyId(id)).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }
}
