//! Company ownership graphs and state-control resolution.
//!
//! The hardest part of the paper's manual stage is deciding whether a
//! government's aggregate position in a company crosses the IMF's >= 50%
//! line when holdings are spread across direct stakes, wholly-owned holding
//! companies, and state-controlled funds (the Telekom Malaysia example sums
//! three funds). This crate provides the substrate for that reasoning:
//!
//! * [`Company`] / [`Business`] — legal entities with the business
//!   classification the paper's exclusion rules need (§5.3);
//! * [`OwnershipGraph`] — a validated shareholding DAG;
//! * [`StateControl`] — the fixpoint computation of which companies each
//!   state *controls*: a company counts as state-controlled when the sum of
//!   stakes held by the government itself plus stakes held by entities the
//!   state already controls reaches 50%. This matches how the paper
//!   attributes fund holdings (Khazanah's stake in Telekom Malaysia counts
//!   in full once Khazanah is state-controlled), rather than multiplying
//!   equity down chains. The multiplicative "economic interest" is also
//!   provided, for the ablation comparing the two attribution models.

pub mod company;
pub mod control;
pub mod graph;

pub use company::{Business, Company, OperatorScope, ServiceKind};
pub use control::{StateControl, StateStake};
pub use graph::{OwnershipGraph, OwnershipGraphBuilder, Shareholding};
