//! State-control resolution over the shareholding graph.
//!
//! Given the validated DAG, [`StateControl::resolve`] answers, for every
//! company and every state: *how much of this company does that state
//! effectively hold, and does it control it?* Two attribution models are
//! computed:
//!
//! * **control-based** (the paper's, and the primary output): a stake held
//!   by an entity the state already controls counts *in full*. Control is
//!   "aggregate attributed equity >= 50%", so the relation is recursive;
//!   one pass in topological order (holders before held) resolves it
//!   because control of a holder is always decided before its stakes are
//!   attributed.
//! * **multiplicative economic interest**: stakes are scaled down chains
//!   (60% of a 80% holder = 48%). Kept for the attribution-model ablation;
//!   under this model Telekom-Malaysia-style fund aggregations can fall
//!   below the line even though the state clearly controls the firm.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use soi_types::{CompanyId, CountryCode, Equity};

use crate::company::Business;
use crate::graph::OwnershipGraph;

/// One state's position in one company.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateStake {
    /// The state (country) holding the position.
    pub country: CountryCode,
    /// Aggregate attributed equity under the control model.
    pub controlled_equity: Equity,
    /// Multiplicative economic interest.
    pub economic_interest: Equity,
}

/// Resolved state positions for every company in a graph.
///
/// ```
/// use soi_ownership::{Business, Company, OperatorScope, OwnershipGraphBuilder,
///                     ServiceKind, StateControl};
/// use soi_types::{cc, CompanyId, Equity};
///
/// let mut b = OwnershipGraphBuilder::new();
/// b.add_company(Company::new(CompanyId(1), "Government of Norway", "State of Norway",
///     cc("NO"), Business::Government));
/// b.add_company(Company::new(CompanyId(2), "Telenor", "Telenor ASA", cc("NO"),
///     Business::InternetOperator { scope: OperatorScope::National,
///                                  service: ServiceKind::Both }));
/// b.add_holding(CompanyId(1), CompanyId(2), Equity::from_bp(5470));
/// let control = StateControl::resolve(&b.build().unwrap());
/// assert_eq!(control.controlling_state(CompanyId(2)), Some(cc("NO")));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StateControl {
    /// Per company: stakes by state, control-model equity.
    stakes: HashMap<CompanyId, Vec<StateStake>>,
}

impl StateControl {
    /// Runs the resolution over the whole graph.
    pub fn resolve(graph: &OwnershipGraph) -> StateControl {
        // Countries that actually have a government entity in the graph.
        let mut gov_of: HashMap<CompanyId, CountryCode> = HashMap::new();
        for c in graph.companies() {
            if c.business == Business::Government {
                gov_of.insert(c.id, c.country);
            }
        }

        let order = graph.topo_order();
        // Per company position: attributed equity per country, both models.
        let n = graph.companies().len();
        let mut ctl: Vec<HashMap<CountryCode, Equity>> = vec![HashMap::new(); n];
        let mut eco: Vec<HashMap<CountryCode, Equity>> = vec![HashMap::new(); n];

        for &pos in &order {
            let holder = graph.company_at(pos);
            // Which states control (or are) this holder?
            let holder_is_gov = gov_of.get(&holder.id).copied();
            let controlling_states: Vec<CountryCode> = match holder_is_gov {
                Some(cc) => vec![cc],
                None => {
                    ctl[pos].iter().filter(|&(_, &e)| e.is_majority()).map(|(&cc, _)| cc).collect()
                }
            };
            // Economic interest flows for every state with any position.
            let eco_positions: Vec<(CountryCode, Equity)> = match holder_is_gov {
                Some(cc) => vec![(cc, Equity::FULL)],
                None => eco[pos].iter().map(|(&cc, &e)| (cc, e)).collect(),
            };

            for holding in graph.portfolio(holder.id) {
                let held_pos =
                    graph.position(holding.held).expect("validated graph has no dangling holdings");
                // Control model: a controlled holder's stake counts fully.
                for &state in &controlling_states {
                    let entry = ctl[held_pos].entry(state).or_insert(Equity::ZERO);
                    *entry = entry.saturating_add(holding.equity);
                }
                // Economic model: scale down the chain.
                for &(state, interest) in &eco_positions {
                    let scaled = interest.scale(holding.equity);
                    if scaled > Equity::ZERO {
                        let entry = eco[held_pos].entry(state).or_insert(Equity::ZERO);
                        *entry = entry.saturating_add(scaled);
                    }
                }
            }
        }

        let mut stakes: HashMap<CompanyId, Vec<StateStake>> = HashMap::new();
        for (pos, company) in graph.companies().iter().enumerate() {
            let mut per: Vec<StateStake> = ctl[pos]
                .iter()
                .map(|(&country, &controlled_equity)| StateStake {
                    country,
                    controlled_equity,
                    economic_interest: eco[pos].get(&country).copied().unwrap_or(Equity::ZERO),
                })
                .collect();
            // Economic-only positions (possible when a holder has interest
            // but no control anywhere on the chain).
            for (&country, &interest) in &eco[pos] {
                if !per.iter().any(|s| s.country == country) {
                    per.push(StateStake {
                        country,
                        controlled_equity: Equity::ZERO,
                        economic_interest: interest,
                    });
                }
            }
            per.sort_by(|a, b| {
                b.controlled_equity
                    .cmp(&a.controlled_equity)
                    .then(b.economic_interest.cmp(&a.economic_interest))
                    .then(a.country.cmp(&b.country))
            });
            if !per.is_empty() {
                stakes.insert(company.id, per);
            }
        }
        StateControl { stakes }
    }

    /// All state stakes in a company, largest first.
    pub fn stakes(&self, company: CompanyId) -> &[StateStake] {
        self.stakes.get(&company).map_or(&[], Vec::as_slice)
    }

    /// The state controlling the company (>= 50% attributed equity), if
    /// any. With an exact 50/50 two-state joint venture, the
    /// lexicographically smaller country code wins for determinism — the
    /// paper similarly assigns joint ventures to the larger shareholder.
    pub fn controlling_state(&self, company: CompanyId) -> Option<CountryCode> {
        self.stakes(company).iter().find(|s| s.controlled_equity.is_majority()).map(|s| s.country)
    }

    /// States with a minority position (0 < equity < 50%) in the company.
    pub fn minority_states(&self, company: CompanyId) -> Vec<(CountryCode, Equity)> {
        self.stakes(company)
            .iter()
            .filter(|s| s.controlled_equity.is_minority())
            .map(|s| (s.country, s.controlled_equity))
            .collect()
    }

    /// Every company controlled by `state`.
    pub fn controlled_by(&self, state: CountryCode) -> Vec<CompanyId> {
        let mut out: Vec<CompanyId> = self
            .stakes
            .iter()
            .filter(|(_, stakes)| {
                stakes
                    .first()
                    .is_some_and(|s| s.controlled_equity.is_majority() && s.country == state)
            })
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Companies with any state position at all.
    pub fn companies_with_stakes(&self) -> impl Iterator<Item = CompanyId> + '_ {
        self.stakes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company::{Business, Company, OperatorScope, ServiceKind};
    use crate::graph::OwnershipGraphBuilder;
    use soi_types::cc;

    fn pct(p: u32) -> Equity {
        Equity::from_percent(p)
    }

    fn company(id: u32, name: &str, country: &str, business: Business) -> Company {
        Company::new(CompanyId(id), name, name, country.parse().unwrap(), business)
    }

    const OPERATOR: Business =
        Business::InternetOperator { scope: OperatorScope::National, service: ServiceKind::Both };

    #[test]
    fn direct_majority() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov NO", "NO", Business::Government));
        b.add_company(company(2, "Telenor", "NO", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(2), Equity::from_bp(5470));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(2)), Some(cc("NO")));
        let s = &sc.stakes(CompanyId(2))[0];
        assert_eq!(s.controlled_equity, Equity::from_bp(5470));
        assert_eq!(s.economic_interest, Equity::from_bp(5470));
    }

    #[test]
    fn fund_aggregation_crosses_majority() {
        // Telekom Malaysia pattern: three wholly-state-owned funds each
        // hold a minority stake; the aggregate controls.
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov MY", "MY", Business::Government));
        b.add_company(company(2, "Khazanah", "MY", Business::Holding));
        b.add_company(company(3, "AmanahRaya", "MY", Business::Holding));
        b.add_company(company(4, "EPF", "MY", Business::Holding));
        b.add_company(company(5, "Telekom Malaysia", "MY", OPERATOR));
        for fund in [2, 3, 4] {
            b.add_holding(CompanyId(1), CompanyId(fund), pct(100));
        }
        b.add_holding(CompanyId(2), CompanyId(5), Equity::from_bp(2620));
        b.add_holding(CompanyId(3), CompanyId(5), Equity::from_bp(1120));
        b.add_holding(CompanyId(4), CompanyId(5), Equity::from_bp(1540));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(5)), Some(cc("MY")));
        assert_eq!(sc.stakes(CompanyId(5))[0].controlled_equity, Equity::from_bp(5280));
    }

    #[test]
    fn partially_owned_fund_breaks_control_chain() {
        // State owns only 40% of the fund; the fund's 60% stake in the
        // telco is NOT attributed to the state under the control model.
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov", "NO", Business::Government));
        b.add_company(company(2, "Fund", "NO", Business::Holding));
        b.add_company(company(3, "Telco", "NO", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(2), pct(40));
        b.add_holding(CompanyId(2), CompanyId(3), pct(60));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(3)), None);
        // Fund itself is minority-state.
        assert_eq!(sc.minority_states(CompanyId(2)), vec![(cc("NO"), pct(40))]);
        // Economic interest still flows: 40% * 60% = 24%.
        let stake = sc.stakes(CompanyId(3)).iter().find(|s| s.country == cc("NO")).unwrap();
        assert_eq!(stake.economic_interest, pct(24));
        assert_eq!(stake.controlled_equity, Equity::ZERO);
    }

    #[test]
    fn foreign_subsidiary_chain() {
        // Qatar controls Ooredoo; Ooredoo holds 55% of a Tunisian telco ->
        // Qatar controls the Tunisian company (foreign subsidiary).
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov QA", "QA", Business::Government));
        b.add_company(company(2, "Ooredoo", "QA", OPERATOR));
        b.add_company(company(3, "Ooredoo Tunisia", "TN", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(2), pct(52));
        b.add_holding(CompanyId(2), CompanyId(3), pct(55));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(3)), Some(cc("QA")));
        assert_eq!(sc.controlled_by(cc("QA")), vec![CompanyId(2), CompanyId(3)]);
    }

    #[test]
    fn joint_venture_majority_holder_wins() {
        // PTCL pattern: Pakistan 62%, UAE 26% -> Pakistan controls, UAE is
        // minority.
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov PK", "PK", Business::Government));
        b.add_company(company(2, "Gov AE", "AE", Business::Government));
        b.add_company(company(3, "PTCL", "PK", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(3), pct(62));
        b.add_holding(CompanyId(2), CompanyId(3), pct(26));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(3)), Some(cc("PK")));
        assert_eq!(sc.minority_states(CompanyId(3)), vec![(cc("AE"), pct(26))]);
    }

    #[test]
    fn exact_fifty_fifty_is_deterministic() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov BE", "BE", Business::Government));
        b.add_company(company(2, "Gov CH", "CH", Business::Government));
        b.add_company(company(3, "BICS", "BE", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(3), pct(50));
        b.add_holding(CompanyId(2), CompanyId(3), pct(50));
        let sc = StateControl::resolve(&b.build().unwrap());
        // Both meet the >=50% rule; ties break to the lexicographically
        // smaller code.
        assert_eq!(sc.controlling_state(CompanyId(3)), Some(cc("BE")));
    }

    #[test]
    fn no_state_participation_no_stakes() {
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "PrivateCo", "US", Business::PrivateInvestorPool));
        b.add_company(company(2, "ISP", "US", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(2), pct(100));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert!(sc.stakes(CompanyId(2)).is_empty());
        assert_eq!(sc.controlling_state(CompanyId(2)), None);
        assert!(sc.controlled_by(cc("US")).is_empty());
    }

    proptest::proptest! {
        /// On random layered ownership DAGs: (1) control implies >= 50%
        /// attributed equity; (2) at most two states can simultaneously
        /// meet the >= 50% rule, and only at exactly 50/50; (3) economic
        /// interest never exceeds control-attributed equity plus rounding.
        #[test]
        fn prop_control_invariants(
            edges in proptest::collection::vec((0u32..12, 12u32..40, 500u16..6_000), 1..40)
        ) {
            use std::collections::HashMap;
            // Companies 0..12 are governments of distinct countries;
            // 12..40 are operators/holdings. Edges point low -> high
            // (layered, hence acyclic). Cap inbound equity at 100%.
            let mut b = OwnershipGraphBuilder::new();
            let countries = soi_types::all_countries();
            for i in 0..12u32 {
                b.add_company(Company::new(
                    CompanyId(i),
                    format!("Gov{i}"),
                    format!("Gov{i}"),
                    countries[i as usize].code,
                    Business::Government,
                ));
            }
            for i in 12..40u32 {
                b.add_company(company(i, &format!("C{i}"), "NO", if i % 3 == 0 {
                    Business::Holding
                } else {
                    OPERATOR
                }));
            }
            let mut into: HashMap<u32, u32> = HashMap::new();
            let mut seen = std::collections::HashSet::new();
            for (holder, held, bp) in edges {
                if holder >= held || !seen.insert((holder, held)) {
                    continue;
                }
                let total = into.entry(held).or_insert(0);
                let bp = u32::from(bp).min(10_000 - *total);
                if bp == 0 {
                    continue;
                }
                *total += bp;
                b.add_holding(CompanyId(holder), CompanyId(held), Equity::from_bp(bp));
            }
            let g = b.build().expect("layered graphs are valid");
            let sc = StateControl::resolve(&g);
            for c in g.companies() {
                let stakes = sc.stakes(c.id);
                let majorities =
                    stakes.iter().filter(|s| s.controlled_equity.is_majority()).count();
                proptest::prop_assert!(majorities <= 2);
                if majorities == 2 {
                    proptest::prop_assert!(stakes
                        .iter()
                        .filter(|s| s.controlled_equity.is_majority())
                        .all(|s| s.controlled_equity == Equity::MAJORITY));
                }
                if let Some(state) = sc.controlling_state(c.id) {
                    let stake = stakes.iter().find(|s| s.country == state).unwrap();
                    proptest::prop_assert!(stake.controlled_equity.is_majority());
                }
                for s in stakes {
                    // Economic interest is a lower bound on control-based
                    // attribution for the same state (scaling only shrinks
                    // stakes; control counts them in full) up to rounding.
                    proptest::prop_assert!(
                        s.economic_interest.bp() <= s.controlled_equity.bp().saturating_add(2)
                            || s.controlled_equity == Equity::ZERO
                    );
                }
            }
        }
    }

    #[test]
    fn deep_chain_control_propagates() {
        // Gov -> 100% H1 -> 60% H2 -> 51% telco: control at every level.
        let mut b = OwnershipGraphBuilder::new();
        b.add_company(company(1, "Gov", "CN", Business::Government));
        b.add_company(company(2, "H1", "CN", Business::Holding));
        b.add_company(company(3, "H2", "CN", Business::Holding));
        b.add_company(company(4, "Telco", "CN", OPERATOR));
        b.add_holding(CompanyId(1), CompanyId(2), pct(100));
        b.add_holding(CompanyId(2), CompanyId(3), pct(60));
        b.add_holding(CompanyId(3), CompanyId(4), pct(51));
        let sc = StateControl::resolve(&b.build().unwrap());
        assert_eq!(sc.controlling_state(CompanyId(4)), Some(cc("CN")));
        // Economic interest: 100% * 60% * 51% = 30.6% < 50%: the ablation
        // model would (wrongly) miss this firm.
        let stake = &sc.stakes(CompanyId(4))[0];
        assert_eq!(stake.economic_interest, Equity::from_bp(3060));
        assert!(stake.controlled_equity.is_majority());
    }
}
