//! `soi` — command-line interface to the state-owned-ases reproduction.
//!
//! ```text
//! soi <command> [--seed N] [--threads T] [args]
//!
//!   summary                world statistics (generation only)
//!   run [--json PATH]      full pipeline; headline + evaluation
//!   whois <ASN>            the synthetic RPSL WHOIS object of an ASN
//!   org <name fragment>    search the identified dataset by name
//!   cti <CC> [k]           top transit ASes of a country by CTI
//!   risk [CC] [--json] [--top K]
//!                          derived risk report: per-country transit
//!                          exposure + chokepoint cut-sets, and the
//!                          EC/STP/LTP/CAHP ownership cross-tab
//!   ageing [years] [--history DIR]
//!                          frozen-dataset decay under ownership churn;
//!                          with --history, score against the stored
//!                          year-by-year datasets instead of re-churning
//!   snapshot write PATH [--format v2|json]
//!                          run the pipeline and persist the result
//!                          (binary v2 container by default)
//!   snapshot inspect PATH [--json]
//!                          print a snapshot's header (and, for v2, its
//!                          section sizes) without serving it
//!   snapshot convert IN OUT [--format v2|json]
//!                          re-encode a snapshot between containers;
//!                          the payload checksum is unchanged
//!   snapshot compact BASE OUT DELTA...
//!                          fold a delta chain into a full snapshot
//!   delta make --out DIR [--years N]
//!                          base snapshot + one delta file per churn year
//!   history build --out DIR [--years N] [--spacing K]
//!                          temporal store: checkpoints + delta segments
//!   history inspect DIR [--json]
//!                          validate a history dir, print its manifest
//!   history checkpoint DIR --spacing K
//!                          rewrite the checkpoint set for a new spacing
//!   serve [--port P]       HTTP query service over the dataset
//!         [--snapshot PATH]  serve from a snapshot file (skips worldgen
//!                            + pipeline; SIGHUP / POST /admin/reload
//!                            re-reads the file with zero downtime; POST
//!                            /admin/delta patches the served payload)
//!         [--history DIR]    attach a history store: `?at=<year>` on the
//!                            /v1 read routes and /v1/history/org/{id}
//!                            ownership timelines
//!         [--io MODE]        serving engine: epoll (default on Linux;
//!                            event loop + pipelining + load shedding)
//!                            or threaded (thread-per-connection)
//!
//! When `serve` rebuilds through the pipeline (no `--snapshot`), the
//! run's topology context also powers the /v1/risk routes.
//! ```
//!
//! Without `--snapshot`, every command regenerates the world from the
//! seed (deterministic, a couple of seconds in release mode).
//!
//! `--threads T` shards both world generation and pipeline execution
//! over T workers (0 = one per core, the default). The output is
//! byte-identical at any thread count; the flag only changes
//! wall-clock time.

use std::sync::Arc;

use soi_analysis::headline::Headline;
use soi_analysis::render::render_table;
use state_owned_ases::analysis::ageing::AgeingReport;
use state_owned_ases::core::{
    payload_checksum, section_stats, Evaluation, InputConfig, Pipeline, PipelineConfig,
    PipelineInputs, Snapshot, SnapshotBuildInfo, SnapshotFormat, SnapshotPayload,
};
use state_owned_ases::delta::{compact, DatasetDelta, DeltaEngine, EngineConfig};
use state_owned_ases::history::{HistoryBuildConfig, HistoryStore};
use state_owned_ases::registry::rpsl;
use state_owned_ases::risk::{RiskConfig, RiskContext};
use state_owned_ases::service::{
    self, HistoryService, IndexProvenance, IndexSlot, Reloader, RiskService, ServerConfig,
    ServiceIndex,
};
use state_owned_ases::types::{Asn, CountryCode};
use state_owned_ases::worldgen::{generate, ChurnConfig, World, WorldConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed = extract_flag(&mut args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(2021);
    // Worker threads for worldgen and the pipeline. 0 = one per core.
    // Any value produces byte-identical output; it only changes
    // wall-clock time.
    let threads: usize = extract_flag(&mut args, "--threads")
        .map(|t| t.parse().unwrap_or_else(|_| fail("--threads needs a number (0 = auto)")))
        .unwrap_or(0);

    let Some(command) = args.first().cloned() else {
        usage();
        std::process::exit(2);
    };

    match command.as_str() {
        "summary" => {
            let (world, _) = build_world(seed, threads);
            summary(&world);
        }
        "run" => {
            // `--json` takes a value here (the output path), unlike the
            // boolean `snapshot inspect --json`.
            let json = extract_flag(&mut args, "--json");
            let (world, wg_micros) = build_world(seed, threads);
            let (inputs, output) = run_pipeline(&world, seed, threads, wg_micros);
            println!("{}", Headline::compute(&inputs, &output).text());
            let eval = Evaluation::score(&output.dataset, &world);
            println!(
                "precision {:.3}  recall {:.3}  F1 {:.3}",
                eval.ases.precision(),
                eval.ases.recall(),
                eval.ases.f1()
            );
            if let Some(path) = json {
                std::fs::write(&path, output.dataset.to_json().expect("serialize"))
                    .expect("write dataset");
                println!("dataset written to {path}");
            }
        }
        "whois" => {
            let asn: Asn = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("whois needs an ASN (e.g. `soi whois AS2119`)"));
            let (world, _) = build_world(seed, threads);
            let whois = state_owned_ases::registry::WhoisDb::generate(
                &world.registrations,
                state_owned_ases::registry::WhoisNoise { seed, ..Default::default() },
            )
            .expect("whois");
            match whois.record(asn) {
                Some(rec) => print!("{}", rpsl::to_rpsl(rec)),
                None => fail(&format!("{asn} is not registered in this world")),
            }
        }
        "org" => {
            let needle = args.get(1).cloned().unwrap_or_else(|| fail("org needs a name fragment"));
            let (world, wg_micros) = build_world(seed, threads);
            let (_, output) = run_pipeline(&world, seed, threads, wg_micros);
            let rows: Vec<Vec<String>> = output
                .dataset
                .organizations
                .iter()
                .filter(|o| o.org_name.to_lowercase().contains(&needle.to_lowercase()))
                .map(|o| {
                    vec![
                        o.org_name.clone(),
                        o.ownership_cc.to_string(),
                        o.asns.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(" "),
                        o.source.clone(),
                    ]
                })
                .collect();
            if rows.is_empty() {
                println!("no organization matches {needle:?}");
            } else {
                println!("{}", render_table(&["organization", "owner", "ASNs", "source"], &rows));
            }
        }
        "cti" => {
            let country: CountryCode = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("cti needs a country code (e.g. `soi cti SY`)"));
            let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
            let (world, wg_micros) = build_world(seed, threads);
            let (inputs, output) = run_pipeline(&world, seed, threads, wg_micros);
            let dataset_ases = output.dataset.state_owned_ases();
            let rows: Vec<Vec<String>> = inputs
                .cti
                .top_k(country, k)
                .into_iter()
                .map(|(asn, score)| {
                    let name =
                        inputs.whois.record(asn).map(|r| r.as_name.clone()).unwrap_or_default();
                    let owned = dataset_ases.binary_search(&asn).is_ok();
                    vec![
                        asn.to_string(),
                        name,
                        format!("{score:.3}"),
                        if owned { "state-owned".into() } else { String::new() },
                    ]
                })
                .collect();
            println!("{}", render_table(&["ASN", "name", "CTI", ""], &rows));
        }
        "risk" => {
            let as_json = extract_bool_flag(&mut args, "--json");
            let top: usize = extract_flag(&mut args, "--top")
                .map(|k| k.parse().unwrap_or_else(|_| fail("--top needs a number")))
                .unwrap_or(5);
            // Validate the optional country argument before the
            // expensive world build so typos fail instantly.
            let country: Option<CountryCode> = args.get(1).map(|raw| {
                raw.to_uppercase().parse().unwrap_or_else(|_| {
                    fail(&format!("{raw:?} is not a two-letter country code (e.g. `soi risk SY`)"))
                })
            });
            let (world, wg_micros) = build_world(seed, threads);
            let (inputs, output) = run_pipeline(&world, seed, threads, wg_micros);
            let ctx = RiskContext::from_run(&world, &inputs, RiskConfig::default());
            let report = ctx
                .report(&output.dataset, &inputs.prefix_to_as, threads)
                .unwrap_or_else(|e| fail(&format!("risk analysis failed: {e}")));
            match country {
                Some(cc) => risk_country(&report, cc, top, as_json),
                None => risk_overview(&report, top, as_json),
            }
        }
        "serve" => {
            let port: u16 = extract_flag(&mut args, "--port")
                .map(|p| p.parse().unwrap_or_else(|_| fail("--port needs a number")))
                .unwrap_or(7021);
            let workers: usize = extract_flag(&mut args, "--workers")
                .map(|w| w.parse().unwrap_or_else(|_| fail("--workers needs a number")))
                .unwrap_or_else(|| ServerConfig::default().workers);
            let io = match extract_flag(&mut args, "--io").as_deref() {
                None => service::IoMode::default(),
                Some("epoll") => service::IoMode::Epoll.effective(),
                Some("threaded") => service::IoMode::Threaded,
                Some(other) => fail(&format!("--io must be epoll or threaded, got {other}")),
            };
            let snapshot_path = extract_flag(&mut args, "--snapshot");
            let history_dir = extract_flag(&mut args, "--history");
            let (slot, reloader, risk_ctx, source) = match &snapshot_path {
                Some(path) => {
                    // Cold start from disk: no worldgen, no pipeline. The
                    // codec auto-detects JSON vs binary v2 from the bytes.
                    let (snapshot, format) = Snapshot::read_from_file_detect(path)
                        .unwrap_or_else(|e| fail(&format!("cannot load snapshot {path}: {e}")));
                    let info = snapshot.header.build.clone();
                    let checksum = snapshot.header.checksum_fnv1a64;
                    let payload = Arc::new(snapshot.payload.clone());
                    let index = Arc::new(ServiceIndex::from_snapshot(snapshot));
                    let slot = Arc::new(IndexSlot::new(index, Some(info)));
                    slot.attach_payload(payload, checksum);
                    slot.set_provenance(IndexProvenance {
                        source: "snapshot".into(),
                        format: Some(format.as_str().to_owned()),
                        threads: 0,
                        timings: None,
                    });
                    let reloader = Reloader::new(path, Arc::clone(&slot));
                    // A snapshot carries no topology/monitor context, so
                    // the /v1/risk routes stay unavailable in this mode.
                    (slot, Some(reloader), None, format!("snapshot {path} ({format})"))
                }
                None => {
                    let (world, wg_micros) = build_world(seed, threads);
                    let (inputs, output) = run_pipeline(&world, seed, threads, wg_micros);
                    let risk_ctx = RiskContext::from_run(&world, &inputs, RiskConfig::default());
                    let payload = SnapshotPayload {
                        dataset: output.dataset.clone(),
                        table: inputs.prefix_to_as.clone(),
                    };
                    let checksum = payload_checksum(&payload)
                        .unwrap_or_else(|e| fail(&format!("cannot checksum payload: {e}")));
                    let index = Arc::new(ServiceIndex::build(output.dataset, &inputs.prefix_to_as));
                    let slot = Arc::new(IndexSlot::new(index, None));
                    slot.attach_payload(Arc::new(payload), checksum);
                    slot.set_provenance(IndexProvenance {
                        source: "pipeline".into(),
                        format: None,
                        threads: output.timings.threads,
                        timings: Some(output.timings),
                    });
                    (slot, None, Some(risk_ctx), format!("pipeline seed {seed}"))
                }
            };
            let history = history_dir.as_ref().map(|dir| {
                let svc = HistoryService::open(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot open history {dir}: {e}")));
                println!(
                    "history attached from {dir}: years 0..={}, checkpoint spacing {}",
                    svc.years(),
                    svc.store().checkpoint_spacing(),
                );
                Arc::new(svc)
            });
            let risk = risk_ctx.map(|ctx| Arc::new(RiskService::new(ctx, threads)));
            let risk_attached = risk.is_some();
            let sizes = slot.load().sizes();
            let generation = slot.status().generation;
            let provenance = slot.provenance();
            let cfg = ServerConfig { workers, io, ..ServerConfig::default() };
            let handle = service::serve_full(slot, reloader, history, risk, ("0.0.0.0", port), cfg)
                .expect("bind service socket");
            println!(
                "soi-service listening on {} from {source} ({} orgs, {} ASNs, {} prefixes; {} workers, {:?} io)",
                handle.local_addr(),
                sizes.organizations,
                sizes.asns,
                sizes.announced_prefixes,
                workers,
                io,
            );
            match &provenance {
                Some(prov) => match &prov.timings {
                    Some(t) => println!(
                        "index: generation {generation} built by {} ({} threads — worldgen {}ms, propagation {}ms, stage1 {}ms, stage2 {}ms, stage3 {}ms, total {}ms)",
                        prov.source,
                        t.threads,
                        t.worldgen_micros / 1000,
                        t.propagation_micros / 1000,
                        t.stage1_micros / 1000,
                        t.stage2_micros / 1000,
                        t.stage3_micros / 1000,
                        t.total_micros / 1000,
                    ),
                    None => {
                        println!("index: generation {generation} loaded from {}", prov.source)
                    }
                },
                None => println!("index: generation {generation}"),
            }
            println!("routes: /v1/asn/{{asn}} /v1/ip/{{addr}} /v1/prefix/{{addr}}/{{len}} /v1/country /v1/country/{{cc}} /v1/search?q=[&limit=&offset=] /v1/dataset  /healthz /metrics  POST /admin/reload /admin/delta  (legacy unversioned data routes still answer, with Deprecation headers)");
            if history_dir.is_some() {
                println!("history routes: ?at=<year> on the /v1 read routes, /v1/history, /v1/history/org/{{id}}");
            }
            if risk_attached {
                println!("risk routes: /v1/risk/country/{{cc}} /v1/risk/chokepoints/{{cc}} /v1/risk/classes (all accept ?at=<year> with --history)");
            }
            service::install_signal_handlers();
            while !service::shutdown_requested() {
                if service::reload_requested() {
                    match handle.reloader() {
                        Some(reloader) => match reloader.reload(handle.metrics()) {
                            Ok(outcome) => eprintln!(
                                "(SIGHUP: snapshot reloaded, generation {} now serving {} orgs)",
                                outcome.generation, outcome.index.organizations,
                            ),
                            Err(e) => {
                                eprintln!("(SIGHUP: reload failed, keeping current index: {e})")
                            }
                        },
                        None => eprintln!("(SIGHUP ignored: not serving from a snapshot file)"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("(signal received, draining)");
            let snap = handle.shutdown();
            println!(
                "served {} requests ({} errors, {} rejected, {} reloads, {} deltas) — p50 {}us p95 {}us p99 {}us",
                snap.requests_total,
                snap.responses_error,
                snap.rejected_backpressure,
                snap.reloads_total,
                snap.deltas_applied,
                snap.latency.p50_micros,
                snap.latency.p95_micros,
                snap.latency.p99_micros,
            );
        }
        "snapshot" => {
            let as_json = extract_bool_flag(&mut args, "--json");
            let format: SnapshotFormat = extract_flag(&mut args, "--format")
                .map(|f| f.parse().unwrap_or_else(|e| fail(&format!("{e}"))))
                .unwrap_or(SnapshotFormat::V2);
            let sub = args.get(1).cloned().unwrap_or_else(|| {
                fail("snapshot needs a subcommand: write | inspect | convert | compact")
            });
            if sub == "compact" {
                snapshot_compact(&args, seed);
                return;
            }
            if sub == "convert" {
                snapshot_convert(&args, format);
                return;
            }
            let path = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| fail(&format!("snapshot {sub} needs a file path")));
            match sub.as_str() {
                "write" => {
                    let (world, wg_micros) = build_world(seed, threads);
                    let (inputs, output) = run_pipeline(&world, seed, threads, wg_micros);
                    let build = SnapshotBuildInfo {
                        tool: "soi snapshot write".into(),
                        seed: Some(seed),
                        comment: "pipeline output over the synthetic world".into(),
                        ..Default::default()
                    };
                    let snapshot = Snapshot::build(output.dataset, inputs.prefix_to_as, build)
                        .unwrap_or_else(|e| fail(&format!("cannot build snapshot: {e}")));
                    snapshot
                        .write_to_file_as(&path, format)
                        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                    println!(
                        "snapshot written to {path} ({format} encoding, payload v{}, {} orgs, {} prefixes, checksum {:#018x})",
                        snapshot.header.format_version,
                        snapshot.header.build.organizations,
                        snapshot.header.build.announced_prefixes,
                        snapshot.header.checksum_fnv1a64,
                    );
                }
                "inspect" => {
                    let bytes = std::fs::read(&path)
                        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                    let (snapshot, detected) = Snapshot::from_bytes_detect(&bytes)
                        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                    // Per-section byte counts only exist for the
                    // sectioned binary container.
                    let sections = match detected {
                        SnapshotFormat::V2 => section_stats(&bytes)
                            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
                        SnapshotFormat::Json => Vec::new(),
                    };
                    let h = &snapshot.header;
                    if as_json {
                        // Machine-readable: the header plus the derived
                        // counts the table shows, as one JSON object.
                        let doc = serde_json::json!({
                            "path": path,
                            "format": detected.as_str(),
                            "file_bytes": bytes.len(),
                            "sections": sections
                                .iter()
                                .map(|s| serde_json::json!({ "name": s.name, "bytes": s.bytes }))
                                .collect::<Vec<_>>(),
                            "format_version": h.format_version,
                            "checksum_fnv1a64": h.checksum_fnv1a64,
                            "build": h.build,
                            "organizations": snapshot.payload.dataset.organizations.len(),
                            "announced_prefixes": snapshot.payload.table.entries().len(),
                            "state_owned_asns":
                                snapshot.payload.dataset.state_owned_ases().len(),
                        });
                        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
                        return;
                    }
                    let mut rows = vec![
                        vec!["format".to_string(), detected.to_string()],
                        vec!["file bytes".into(), bytes.len().to_string()],
                        vec!["payload version".into(), h.format_version.to_string()],
                        vec!["checksum (fnv1a64)".into(), format!("{:#018x}", h.checksum_fnv1a64)],
                        vec!["tool".into(), h.build.tool.clone()],
                        vec![
                            "seed".into(),
                            h.build.seed.map_or_else(|| "-".into(), |s| s.to_string()),
                        ],
                        vec!["organizations".into(), h.build.organizations.to_string()],
                        vec!["announced prefixes".into(), h.build.announced_prefixes.to_string()],
                        vec!["comment".into(), h.build.comment.clone()],
                        vec![
                            "state-owned ASNs".into(),
                            snapshot.payload.dataset.state_owned_ases().len().to_string(),
                        ],
                    ];
                    for s in &sections {
                        rows.push(vec![
                            format!("section {}", s.name),
                            format!("{} bytes", s.bytes),
                        ]);
                    }
                    println!("{}", render_table(&["field", "value"], &rows));
                }
                other => fail(&format!(
                    "unknown snapshot subcommand: {other} (write | inspect | convert | compact)"
                )),
            }
        }
        "delta" => {
            let years: u32 = extract_flag(&mut args, "--years")
                .map(|y| y.parse().unwrap_or_else(|_| fail("--years needs a number")))
                .unwrap_or(3);
            let out = extract_flag(&mut args, "--out")
                .unwrap_or_else(|| fail("delta make needs --out DIR"));
            let sub =
                args.get(1).cloned().unwrap_or_else(|| fail("delta needs a subcommand: make"));
            if sub != "make" {
                fail(&format!("unknown delta subcommand: {sub} (make)"));
            }
            delta_make(&out, years, seed, threads);
        }
        "history" => {
            history_cmd(&mut args, seed, threads);
        }
        "ageing" => {
            let history_dir = extract_flag(&mut args, "--history");
            let years: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
            let (world, wg_micros) = build_world(seed, threads);
            let (_, output) = run_pipeline(&world, seed, threads, wg_micros);
            let report = match history_dir {
                Some(dir) => {
                    // Score the frozen dataset against the stored
                    // year-by-year ground truth instead of re-churning.
                    let store = HistoryStore::open(&dir)
                        .unwrap_or_else(|e| fail(&format!("cannot open history {dir}: {e}")));
                    let last = store.years().min(years);
                    let yearly: Vec<Vec<Asn>> = (0..=last)
                        .map(|y| {
                            let (payload, _) = store.resolve(y).unwrap_or_else(|e| {
                                fail(&format!("cannot resolve year {y} from {dir}: {e}"))
                            });
                            payload.dataset.state_owned_ases()
                        })
                        .collect();
                    AgeingReport::from_series(&output.dataset, &yearly)
                }
                None => {
                    let churn = ChurnConfig { seed, ..Default::default() };
                    AgeingReport::compute(&world, &output.dataset, &churn, years).expect("ageing")
                }
            };
            println!("{}", report.text());
        }
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

/// `soi risk <CC>`: one country's transit exposure and chokepoint
/// cut-set, as tables or one JSON document.
fn risk_country(
    report: &state_owned_ases::risk::RiskReport,
    cc: CountryCode,
    top: usize,
    as_json: bool,
) {
    let Some(exposure) = report.country(cc) else {
        fail(&format!("{cc} has no observed routes or announced space in this run"));
    };
    let chokepoints = report.chokepoints_for(cc);
    if as_json {
        let doc = serde_json::json!({
            "report_checksum": report.checksum,
            "country": exposure,
            "chokepoints": chokepoints,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return;
    }
    println!(
        "{cc}: {} transit ASes, total CTI {:.3} — foreign {:.1}%, state-owned {:.1}%, foreign+state {:.1}%",
        exposure.transit_ases,
        exposure.total_score,
        exposure.foreign_share * 100.0,
        exposure.state_share * 100.0,
        exposure.foreign_state_share * 100.0,
    );
    let rows: Vec<Vec<String>> = exposure
        .top
        .iter()
        .take(top)
        .map(|e| {
            vec![
                e.asn.to_string(),
                format!("{:.3}", e.score),
                e.registered_cc.map_or_else(|| "-".into(), |c| c.to_string()),
                risk_markers(e.foreign, e.state_owned),
            ]
        })
        .collect();
    println!("{}", render_table(&["ASN", "CTI", "registered", "flags"], &rows));
    match chokepoints {
        Some(ch) if !ch.cut.is_empty() => {
            println!(
                "chokepoint cut: {} of {} cuttable routes covered ({} observed){}",
                ch.covered,
                ch.cuttable,
                ch.routes,
                if ch.partitioned { " — partition target reached" } else { "" },
            );
            let rows: Vec<Vec<String>> = ch
                .cut
                .iter()
                .map(|e| {
                    vec![
                        e.asn.to_string(),
                        e.severed.to_string(),
                        e.registered_cc.map_or_else(|| "-".into(), |c| c.to_string()),
                        risk_markers(e.foreign, e.state_owned),
                    ]
                })
                .collect();
            println!("{}", render_table(&["ASN", "routes severed", "registered", "flags"], &rows));
        }
        _ => println!("no chokepoint cut: no cuttable inbound routes observed"),
    }
}

/// `soi risk` (no country): the class × ownership cross-tab and the
/// countries most exposed to foreign state-owned transit.
fn risk_overview(report: &state_owned_ases::risk::RiskReport, top: usize, as_json: bool) {
    if as_json {
        println!("{}", serde_json::to_string_pretty(report).expect("serialize"));
        return;
    }
    let rows: Vec<Vec<String>> = report
        .classes
        .summary
        .iter()
        .map(|s| vec![s.class.as_str().to_string(), s.total.to_string(), s.state_owned.to_string()])
        .collect();
    println!("{}", render_table(&["class", "ASes", "state-owned"], &rows));
    // Countries ranked by the share of their inbound transit carried by
    // foreign state-owned ASes — the paper's core exposure question.
    let mut ranked: Vec<_> = report.exposure.iter().filter(|e| e.transit_ases > 0).collect();
    ranked.sort_by(|a, b| {
        b.foreign_state_share
            .partial_cmp(&a.foreign_state_share)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.country.cmp(&b.country))
    });
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(top)
        .map(|e| {
            vec![
                e.country.to_string(),
                e.transit_ases.to_string(),
                format!("{:.1}%", e.foreign_share * 100.0),
                format!("{:.1}%", e.state_share * 100.0),
                format!("{:.1}%", e.foreign_state_share * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["country", "transit ASes", "foreign", "state-owned", "foreign+state"],
            &rows
        )
    );
    println!("report checksum {:#018x}", report.checksum);
}

/// Compact foreign/state-owned markers for risk tables.
fn risk_markers(foreign: bool, state_owned: bool) -> String {
    match (foreign, state_owned) {
        (true, true) => "foreign state-owned".into(),
        (true, false) => "foreign".into(),
        (false, true) => "state-owned".into(),
        (false, false) => String::new(),
    }
}

/// Generates the world and reports how long it took (µs). `threads`
/// shards country generation; the world is byte-identical at any
/// count, so the flag only changes wall-clock time.
fn build_world(seed: u64, threads: usize) -> (World, u64) {
    eprintln!("(generating world, seed {seed})");
    let started = std::time::Instant::now();
    let world =
        generate(&WorldConfig { seed, threads, ..WorldConfig::paper_scale() }).expect("worldgen");
    let micros = started.elapsed().as_micros() as u64;
    eprintln!(
        "(worldgen: {} threads — {}ms)",
        state_owned_ases::core::resolve_threads(threads),
        micros / 1000,
    );
    (world, micros)
}

/// `soi delta make --out DIR [--years N]`: write the base snapshot and
/// one delta file per churn year, forming a chain a server (or
/// `soi snapshot compact`) can consume in order.
fn delta_make(out: &str, years: u32, seed: u64, threads: usize) {
    std::fs::create_dir_all(out).unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
    let (world, _) = build_world(seed, threads);
    let mut cfg = EngineConfig::with_seed(seed);
    cfg.threads = threads;
    let mut engine = DeltaEngine::new(world, cfg)
        .unwrap_or_else(|e| fail(&format!("cannot boot delta engine: {e}")));

    let base_path = format!("{out}/base.snapshot.json");
    let base = engine.current();
    let build = SnapshotBuildInfo {
        tool: "soi delta make".into(),
        seed: Some(seed),
        comment: "base generation of a delta stream".into(),
        ..Default::default()
    };
    let snapshot = Snapshot::build(base.payload.dataset.clone(), base.payload.table.clone(), build)
        .unwrap_or_else(|e| fail(&format!("cannot build base snapshot: {e}")));
    snapshot
        .write_to_file(&base_path)
        .unwrap_or_else(|e| fail(&format!("cannot write {base_path}: {e}")));
    println!(
        "base snapshot written to {base_path} ({} orgs, checksum {:#018x})",
        snapshot.header.build.organizations, snapshot.header.checksum_fnv1a64,
    );

    for year in 0..years {
        let step = engine.step().unwrap_or_else(|e| fail(&format!("step for year {year}: {e}")));
        let delta_path = format!("{out}/delta-{year:03}.json");
        step.delta
            .write_to_file(&delta_path)
            .unwrap_or_else(|e| fail(&format!("cannot write {delta_path}: {e}")));
        println!(
            "{delta_path}: {} events, {} patch records ({} dirty names, {} outcomes reused), result {:#018x}",
            step.stats.events,
            step.delta.patch_size(),
            step.stats.dirty_names,
            step.stats.reused_outcomes,
            step.delta.header.result_checksum,
        );
    }
    println!(
        "apply in order with POST /admin/delta, or fold with `soi snapshot compact {base_path} OUT {out}/delta-*.json`"
    );
}

/// `soi history build|inspect|checkpoint`: manage a temporal store of
/// periodic full checkpoints plus per-year delta segments, servable via
/// `soi serve --history DIR`.
fn history_cmd(args: &mut Vec<String>, seed: u64, threads: usize) {
    let as_json = extract_bool_flag(args, "--json");
    let years: u32 = extract_flag(args, "--years")
        .map(|y| y.parse().unwrap_or_else(|_| fail("--years needs a number")))
        .unwrap_or(6);
    let spacing: Option<u32> = extract_flag(args, "--spacing")
        .map(|s| s.parse().unwrap_or_else(|_| fail("--spacing needs a positive number")));
    let out = extract_flag(args, "--out");
    let sub = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| fail("history needs a subcommand: build | inspect | checkpoint"));
    match sub.as_str() {
        "build" => {
            let out = out.unwrap_or_else(|| fail("history build needs --out DIR"));
            let (world, _) = build_world(seed, threads);
            let mut engine_cfg = EngineConfig::with_seed(seed);
            engine_cfg.threads = threads;
            let mut engine = DeltaEngine::new(world, engine_cfg)
                .unwrap_or_else(|e| fail(&format!("cannot boot delta engine: {e}")));
            let cfg = HistoryBuildConfig {
                checkpoint_spacing: spacing.unwrap_or(4),
                seed: Some(seed),
                tool: "soi history build".into(),
                ..Default::default()
            };
            let store = HistoryStore::build(&out, &mut engine, years, &cfg)
                .unwrap_or_else(|e| fail(&format!("cannot build history {out}: {e}")));
            println!(
                "history written to {out}: years 0..={}, {} checkpoints (spacing {}), {} segments",
                store.years(),
                store.checkpoint_years().len(),
                store.checkpoint_spacing(),
                store.years(),
            );
            println!("serve it with `soi serve --history {out}`");
        }
        "inspect" => {
            let dir =
                args.get(2).cloned().unwrap_or_else(|| fail("history inspect needs a directory"));
            let store = HistoryStore::open(&dir)
                .unwrap_or_else(|e| fail(&format!("cannot open history {dir}: {e}")));
            let m = store.manifest();
            if as_json {
                // Machine-readable: the manifest body (already the full
                // year table) plus the derived checkpoint list.
                let doc = serde_json::json!({
                    "dir": dir,
                    "format_version": state_owned_ases::history::HISTORY_FORMAT_VERSION,
                    "years": m.years,
                    "checkpoint_spacing": m.checkpoint_spacing,
                    "checkpoints": store.checkpoint_years(),
                    "tool": m.tool,
                    "seed": m.seed,
                    "entries": m.entries,
                });
                println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
                return;
            }
            let rows: Vec<Vec<String>> = m
                .entries
                .iter()
                .map(|e| {
                    vec![
                        e.year.to_string(),
                        format!("{:#018x}", e.payload_checksum),
                        e.checkpoint.clone().unwrap_or_else(|| "-".into()),
                        e.segment.clone().unwrap_or_else(|| "-".into()),
                        e.events.to_string(),
                    ]
                })
                .collect();
            println!(
                "{dir}: years 0..={}, checkpoint spacing {} (tool {}, seed {})",
                m.years,
                m.checkpoint_spacing,
                m.tool,
                m.seed.map_or_else(|| "-".into(), |s| s.to_string()),
            );
            println!(
                "{}",
                render_table(
                    &["year", "payload checksum", "checkpoint", "segment", "events"],
                    &rows
                )
            );
        }
        "checkpoint" => {
            let dir = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| fail("history checkpoint needs a directory"));
            let spacing = spacing.unwrap_or_else(|| fail("history checkpoint needs --spacing K"));
            let mut store = HistoryStore::open(&dir)
                .unwrap_or_else(|e| fail(&format!("cannot open history {dir}: {e}")));
            let old_spacing = store.checkpoint_spacing();
            let report = store
                .re_checkpoint(spacing)
                .unwrap_or_else(|e| fail(&format!("cannot re-checkpoint {dir}: {e}")));
            println!(
                "{dir}: spacing {old_spacing} -> {spacing}; wrote {} checkpoints {:?}, removed {} {:?}; now {:?}",
                report.written.len(),
                report.written,
                report.removed.len(),
                report.removed,
                store.checkpoint_years(),
            );
        }
        other => {
            fail(&format!("unknown history subcommand: {other} (build | inspect | checkpoint)"))
        }
    }
}

/// `soi snapshot convert IN OUT [--format v2|json]`: re-encode a
/// snapshot between the JSON and binary containers. The payload — and
/// its canonical checksum — is identical on both sides; only the
/// container bytes change, so a converted file serves byte-identical
/// answers and stays a valid base for the same delta chain.
fn snapshot_convert(args: &[String], format: SnapshotFormat) {
    let in_path =
        args.get(2).cloned().unwrap_or_else(|| fail("snapshot convert needs an input path"));
    let out_path =
        args.get(3).cloned().unwrap_or_else(|| fail("snapshot convert needs an output path"));
    let (snapshot, from) = Snapshot::read_from_file_detect(&in_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {in_path}: {e}")));
    snapshot
        .write_to_file_as(&out_path, format)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!(
        "converted {in_path} ({from}) -> {out_path} ({format}); payload checksum {:#018x} unchanged",
        snapshot.header.checksum_fnv1a64,
    );
}

/// `soi snapshot compact BASE OUT DELTA...`: fold a delta chain into a
/// full snapshot equivalent to having applied every delta in order.
fn snapshot_compact(args: &[String], seed: u64) {
    let base_path =
        args.get(2).cloned().unwrap_or_else(|| fail("snapshot compact needs a base snapshot path"));
    let out_path =
        args.get(3).cloned().unwrap_or_else(|| fail("snapshot compact needs an output path"));
    let delta_paths = &args[4.min(args.len())..];
    if delta_paths.is_empty() {
        fail("snapshot compact needs at least one delta file");
    }
    let base = Snapshot::read_from_file(&base_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {base_path}: {e}")));
    let deltas: Vec<DatasetDelta> = delta_paths
        .iter()
        .map(|p| {
            DatasetDelta::read_from_file(p)
                .unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")))
        })
        .collect();
    let build = SnapshotBuildInfo {
        tool: "soi snapshot compact".into(),
        seed: Some(seed),
        comment: format!("{} deltas folded onto {base_path}", deltas.len()),
        ..Default::default()
    };
    let snapshot = compact(&base, &deltas, build)
        .unwrap_or_else(|e| fail(&format!("cannot compact chain: {e}")));
    snapshot
        .write_to_file(&out_path)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!(
        "compacted {} deltas onto {base_path} -> {out_path} ({} orgs, checksum {:#018x})",
        deltas.len(),
        snapshot.header.build.organizations,
        snapshot.header.checksum_fnv1a64,
    );
}

fn run_pipeline(
    world: &World,
    seed: u64,
    threads: usize,
    worldgen_micros: u64,
) -> (PipelineInputs, state_owned_ases::core::PipelineOutput) {
    let threads = state_owned_ases::core::resolve_threads(threads);
    let input_cfg = InputConfig { threads, ..InputConfig::with_seed(seed) };
    let inputs = PipelineInputs::from_world(world, &input_cfg).expect("inputs");
    let mut output = Pipeline::run_parallel(&inputs, &PipelineConfig::default(), threads);
    output.timings.worldgen_micros = worldgen_micros;
    output.timings.propagation_micros = inputs.propagation_micros;
    let t = &output.timings;
    eprintln!(
        "(pipeline: {} threads — worldgen {}ms, propagation {}ms, stage1 {}ms, stage2 {}ms, stage3 {}ms, total {}ms)",
        t.threads,
        t.worldgen_micros / 1000,
        t.propagation_micros / 1000,
        t.stage1_micros / 1000,
        t.stage2_micros / 1000,
        t.stage3_micros / 1000,
        t.total_micros / 1000,
    );
    (inputs, output)
}

fn summary(world: &World) {
    let rows = vec![
        vec!["ASes".to_string(), world.num_ases().to_string()],
        vec!["links".into(), world.topology.num_links().to_string()],
        vec!["prefixes".into(), world.prefix_assignments.len().to_string()],
        vec!["companies".into(), world.ownership.companies().len().to_string()],
        vec!["state-owned ASes (truth)".into(), world.truth.state_owned_ases.len().to_string()],
        vec![
            "foreign-subsidiary ASes (truth)".into(),
            world.truth.foreign_subsidiary_ases.len().to_string(),
        ],
        vec!["owner countries (truth)".into(), world.truth.owner_countries().len().to_string()],
    ];
    println!("{}", render_table(&["quantity", "value"], &rows));
}

fn extract_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let ix = args.iter().position(|a| a == flag)?;
    if ix + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    let value = args.remove(ix + 1);
    args.remove(ix);
    Some(value)
}

/// Removes a valueless flag (e.g. `--json`), returning whether it was
/// present.
fn extract_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(ix) => {
            args.remove(ix);
            true
        }
        None => false,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage() {
    eprintln!(
        "soi — state-owned-ases reproduction CLI\n\n\
         usage: soi <command> [--seed N] [--threads T]\n\n\
         \x20 --threads T           worldgen + pipeline worker threads (0 = one\n\
         \x20                       per core); output is byte-identical at any\n\
         \x20                       count\n\n\
         commands:\n\
         \x20 summary               world statistics\n\
         \x20 run [--json PATH]     full pipeline + evaluation\n\
         \x20 whois <ASN>           synthetic RPSL WHOIS object\n\
         \x20 org <name>            search the dataset by name\n\
         \x20 cti <CC> [k]          top transit ASes of a country\n\
         \x20 risk [CC] [--json] [--top K]\n\
         \x20                       derived risk report: country transit\n\
         \x20                       exposure + chokepoint cut-sets, and the\n\
         \x20                       EC/STP/LTP/CAHP ownership cross-tab\n\
         \x20 ageing [years] [--history DIR]\n\
         \x20                       dataset decay under churn; with --history,\n\
         \x20                       scored against the stored yearly datasets\n\
         \x20 snapshot write PATH [--format v2|json]\n\
         \x20                       run the pipeline, persist the result\n\
         \x20                       (binary v2 container by default)\n\
         \x20 snapshot inspect PATH [--json]\n\
         \x20                       print a snapshot's header and, for v2,\n\
         \x20                       its section sizes (table or JSON)\n\
         \x20 snapshot convert IN OUT [--format v2|json]\n\
         \x20                       re-encode between containers; payload\n\
         \x20                       checksum unchanged\n\
         \x20 snapshot compact BASE OUT DELTA...\n\
         \x20                       fold a delta chain into a full snapshot\n\
         \x20 delta make --out DIR [--years N]\n\
         \x20                       base snapshot + one delta per churn year\n\
         \x20 history build --out DIR [--years N] [--spacing K]\n\
         \x20                       temporal store: checkpoints + delta segments\n\
         \x20 history inspect DIR [--json]\n\
         \x20                       validate a history dir, print its manifest\n\
         \x20 history checkpoint DIR --spacing K\n\
         \x20                       rewrite the checkpoint set for a new spacing\n\
         \x20 serve [--port P] [--workers W] [--snapshot PATH] [--history DIR]\n\
         \x20                       HTTP query service over the dataset;\n\
         \x20                       with --snapshot, serve from the file and\n\
         \x20                       reload on SIGHUP / POST /admin/reload;\n\
         \x20                       POST /admin/delta patches the served payload;\n\
         \x20                       with --history, ?at=<year> as-of queries and\n\
         \x20                       /v1/history/org/{{id}} timelines; without\n\
         \x20                       --snapshot, /v1/risk/* analyses are served"
    );
}
