//! Umbrella crate for the `state-owned-ases` workspace.
//!
//! Re-exports every member crate under a stable module name so examples and
//! downstream users can depend on one crate. See [`soi_core`] for the
//! pipeline entry point and [`soi_worldgen`] for the synthetic Internet.

pub use soi_analysis as analysis;
pub use soi_bgp as bgp;
pub use soi_core as core;
pub use soi_cti as cti;
pub use soi_delta as delta;
pub use soi_eyeballs as eyeballs;
pub use soi_geo as geo;
pub use soi_history as history;
pub use soi_ownership as ownership;
pub use soi_registry as registry;
pub use soi_risk as risk;
pub use soi_service as service;
pub use soi_sources as sources;
pub use soi_topology as topology;
pub use soi_types as types;
pub use soi_worldgen as worldgen;
